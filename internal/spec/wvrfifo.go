package spec

import (
	"fmt"

	"vsgm/internal/types"
)

// msgInfo records, at send time, the association of a message with its
// sender, the view it was sent in, and its FIFO index — the history tags Hv
// and Hi of Section 6.1.1.
type msgInfo struct {
	sender  types.ProcID
	viewKey string
	index   int
}

// procView tracks one process's current view as the specification automaton
// sees it, together with the recovery epoch used to disambiguate repeated
// occupancy of the initial singleton view across crash/recovery cycles.
type procView struct {
	view  types.View
	epoch int
}

func (pv procView) key() string {
	if pv.view.ID == types.InitialViewID {
		return fmt.Sprintf("%s#%d", pv.view.Key(), pv.epoch)
	}
	return pv.view.Key()
}

// WVRFIFO checks the within-view reliable FIFO specification (Figure 4):
//
//   - Self Inclusion and Local Monotonicity on delivered views;
//   - every message is delivered in the view in which it was sent;
//   - deliveries from each sender are gap-free and FIFO within a view.
//
// It also checks the local well-formedness rule that a process delivers each
// message at most once per view (implied by the last_dlvrd indexing).
type WVRFIFO struct {
	base

	views     map[types.ProcID]procView
	maxViewID map[types.ProcID]types.ViewID
	seq       map[types.ProcID]int // per-sender index within its current view
	lastDlvrd map[types.ProcID]map[types.ProcID]int
	info      map[int64]msgInfo
	crashed   map[types.ProcID]bool
}

// NewWVRFIFO returns a checker for WV_RFIFO : SPEC.
func NewWVRFIFO() *WVRFIFO {
	return &WVRFIFO{
		base:      base{name: "WV_RFIFO:SPEC"},
		views:     make(map[types.ProcID]procView),
		maxViewID: make(map[types.ProcID]types.ViewID),
		seq:       make(map[types.ProcID]int),
		lastDlvrd: make(map[types.ProcID]map[types.ProcID]int),
		info:      make(map[int64]msgInfo),
		crashed:   make(map[types.ProcID]bool),
	}
}

func (c *WVRFIFO) viewOf(p types.ProcID) procView {
	if pv, ok := c.views[p]; ok {
		return pv
	}
	pv := procView{view: types.InitialView(p)}
	c.views[p] = pv
	return pv
}

func (c *WVRFIFO) dlvrdRow(p types.ProcID) map[types.ProcID]int {
	row := c.lastDlvrd[p]
	if row == nil {
		row = make(map[types.ProcID]int)
		c.lastDlvrd[p] = row
	}
	return row
}

// OnEvent implements Checker.
func (c *WVRFIFO) OnEvent(ev Event) {
	switch e := ev.(type) {
	case ESend:
		if c.crashed[e.P] {
			c.failf("send at crashed process %s", e.P)
			return
		}
		c.seq[e.P]++
		c.info[e.MsgID] = msgInfo{
			sender:  e.P,
			viewKey: c.viewOf(e.P).key(),
			index:   c.seq[e.P],
		}

	case EDeliver:
		if c.crashed[e.P] {
			c.failf("deliver at crashed process %s", e.P)
			return
		}
		mi, ok := c.info[e.MsgID]
		if !ok {
			c.failf("%s delivered message #%d that was never sent", e.P, e.MsgID)
			return
		}
		if mi.sender != e.From {
			c.failf("%s delivered #%d attributed to %s but sent by %s",
				e.P, e.MsgID, e.From, mi.sender)
			return
		}
		cur := c.viewOf(e.P)
		if mi.viewKey != cur.key() {
			c.failf("%s delivered #%d (sent by %s in view key %q) while in view key %q: violates within-view delivery",
				e.P, e.MsgID, e.From, mi.viewKey, cur.key())
			return
		}
		row := c.dlvrdRow(e.P)
		if want := row[e.From] + 1; mi.index != want {
			c.failf("%s delivered #%d from %s at index %d, expected index %d: violates gap-free FIFO",
				e.P, e.MsgID, e.From, mi.index, want)
			return
		}
		row[e.From]++

	case EView:
		if c.crashed[e.P] {
			c.failf("view delivered at crashed process %s", e.P)
			return
		}
		if !e.View.Contains(e.P) {
			c.failf("%s delivered view %s without itself: violates Self Inclusion", e.P, e.View)
		}
		if _, seen := c.maxViewID[e.P]; !seen {
			c.maxViewID[e.P] = types.InitialViewID
		}
		if e.View.ID <= c.maxViewID[e.P] {
			c.failf("%s delivered view id %d after view id %d: violates Local Monotonicity",
				e.P, e.View.ID, c.maxViewID[e.P])
		} else {
			c.maxViewID[e.P] = e.View.ID
		}
		epoch := c.viewOf(e.P).epoch
		c.views[e.P] = procView{view: e.View, epoch: epoch}
		c.lastDlvrd[e.P] = make(map[types.ProcID]int)
		c.seq[e.P] = 0

	case ECrash:
		c.crashed[e.P] = true

	case ERecover:
		c.crashed[e.P] = false
		pv := c.viewOf(e.P)
		// The recovered process restarts in a fresh epoch of its initial
		// singleton view; Local Monotonicity continues to be judged against
		// the pre-crash maximum (Section 8).
		c.views[e.P] = procView{view: types.InitialView(e.P), epoch: pv.epoch + 1}
		c.lastDlvrd[e.P] = make(map[types.ProcID]int)
		c.seq[e.P] = 0
	}
}

// Finalize implements Checker; WV_RFIFO has no end-of-trace obligations.
func (c *WVRFIFO) Finalize() {}

var _ Checker = (*WVRFIFO)(nil)
