package spec

import (
	"hash/fnv"

	"vsgm/internal/types"
)

// WithSample restricts the suite to the trace's projection onto a sampled
// set of processes: an event is checked only when keep(ev.Proc()) is true,
// and a delivery additionally requires its sender to be sampled, so the
// cross-process checkers (WV_RFIFO, VS_RFIFO) always see the send that a
// checked delivery refers to.
//
// Sampling makes checker cost proportional to the sampled population
// instead of the full one, which is what lets the suite ride along on
// 10k-100k-endpoint simulations. It is sound for the safety checkers — any
// violation reported on the projected trace is a violation of the full
// trace — but it inspects only the sampled processes, and it must not be
// combined with CheckLiveness (dropped deliveries at unsampled members
// would read as false liveness violations).
//
// Trace retention (WithTrace) is filtered the same way, so retained traces
// also scale with the sample.
func WithSample(keep func(types.ProcID) bool) SuiteOption {
	return func(s *Suite) { s.sample = keep }
}

// SampleEveryKth returns a deterministic sampling predicate that keeps
// roughly every k-th process, chosen by identifier hash so the sampled set
// is stable across runs, process-join order, and population growth
// (flash-crowd joins land in the sample at the same 1/k rate). k <= 1
// keeps everything.
func SampleEveryKth(k int) func(types.ProcID) bool {
	if k <= 1 {
		return func(types.ProcID) bool { return true }
	}
	uk := uint64(k)
	return func(p types.ProcID) bool {
		h := fnv.New64a()
		h.Write([]byte(p))
		return h.Sum64()%uk == 0
	}
}

// sampled reports whether ev survives the suite's sampling projection.
func (s *Suite) sampled(ev Event) bool {
	if s.sample == nil {
		return true
	}
	if !s.sample(ev.Proc()) {
		return false
	}
	if d, ok := ev.(EDeliver); ok && !s.sample(d.From) {
		return false
	}
	return true
}

// SampleStats returns how many events the suite has been offered and how
// many survived the sampling projection (equal unless WithSample is set).
func (s *Suite) SampleStats() (seen, kept int64) { return s.seen, s.kept }
