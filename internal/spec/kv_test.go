package spec

import (
	"strings"
	"testing"
)

func TestCheckNoLostAckedWritesPasses(t *testing.T) {
	acks := []KVAck{
		{Key: "a", Value: "1", Seq: 1},
		{Key: "a", Value: "2", Seq: 3}, // supersedes seq 1
		{Key: "b", Value: "x", Seq: 2},
		{Key: "c", Value: "y", Seq: 4},
		{Key: "c", Seq: 5, Deleted: true},
	}
	state := map[string]string{"a": "2", "b": "x"}
	err := CheckNoLostAckedWrites(acks, func(k string) (string, bool) {
		v, ok := state[k]
		return v, ok
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckNoLostAckedWritesDetectsLoss(t *testing.T) {
	acks := []KVAck{{Key: "a", Value: "1", Seq: 1}}
	err := CheckNoLostAckedWrites(acks, func(string) (string, bool) { return "", false })
	if err == nil || !strings.Contains(err.Error(), "lost") {
		t.Fatalf("err = %v, want a loss report", err)
	}
}

func TestCheckNoLostAckedWritesDetectsStaleValue(t *testing.T) {
	acks := []KVAck{
		{Key: "a", Value: "old", Seq: 1},
		{Key: "a", Value: "new", Seq: 2},
	}
	err := CheckNoLostAckedWrites(acks, func(string) (string, bool) { return "old", true })
	if err == nil {
		t.Fatal("rollback to a superseded value must be flagged")
	}
}

func TestCheckNoLostAckedWritesDetectsResurrection(t *testing.T) {
	acks := []KVAck{
		{Key: "a", Value: "1", Seq: 1},
		{Key: "a", Seq: 2, Deleted: true},
	}
	err := CheckNoLostAckedWrites(acks, func(string) (string, bool) { return "1", true })
	if err == nil {
		t.Fatal("an acknowledged delete that reads back must be flagged")
	}
}
