package spec

import "vsgm/internal/types"

// SelfDelivery checks SELF : SPEC (Figure 7): an end-point does not deliver
// a new view before it has delivered every message its own application sent
// in the current view. The property is meaningful only for GCS-level runs
// (with client blocking); VS-level runs intentionally fail it.
type SelfDelivery struct {
	base

	sent      map[types.ProcID]int
	delivered map[types.ProcID]int
	crashed   map[types.ProcID]bool
}

// NewSelfDelivery returns a checker for SELF : SPEC.
func NewSelfDelivery() *SelfDelivery {
	return &SelfDelivery{
		base:      base{name: "SELF:SPEC"},
		sent:      make(map[types.ProcID]int),
		delivered: make(map[types.ProcID]int),
		crashed:   make(map[types.ProcID]bool),
	}
}

// OnEvent implements Checker.
func (c *SelfDelivery) OnEvent(ev Event) {
	switch e := ev.(type) {
	case ESend:
		if !c.crashed[e.P] {
			c.sent[e.P]++
		}
	case EDeliver:
		if !c.crashed[e.P] && e.From == e.P {
			c.delivered[e.P]++
		}
	case EView:
		if c.crashed[e.P] {
			return
		}
		if c.delivered[e.P] != c.sent[e.P] {
			c.failf("%s installed view %s having self-delivered %d of %d own messages: violates Self Delivery",
				e.P, e.View, c.delivered[e.P], c.sent[e.P])
		}
		c.sent[e.P] = 0
		c.delivered[e.P] = 0
	case ECrash:
		c.crashed[e.P] = true
	case ERecover:
		c.crashed[e.P] = false
		c.sent[e.P] = 0
		c.delivered[e.P] = 0
	}
}

// Finalize implements Checker; Self Delivery has no end-of-trace
// obligations (undelivered messages at trace end are a liveness concern).
func (c *SelfDelivery) Finalize() {}

var _ Checker = (*SelfDelivery)(nil)

// BlockingClient checks the abstract client specification of Figure 12: the
// application never sends while blocked, and block_ok only answers an
// outstanding block request. The next view unblocks the client.
type BlockingClient struct {
	base

	status  map[types.ProcID]string
	crashed map[types.ProcID]bool
}

// NewBlockingClient returns a checker for CLIENT : SPEC.
func NewBlockingClient() *BlockingClient {
	return &BlockingClient{
		base:    base{name: "CLIENT:SPEC"},
		status:  make(map[types.ProcID]string),
		crashed: make(map[types.ProcID]bool),
	}
}

// OnEvent implements Checker.
func (c *BlockingClient) OnEvent(ev Event) {
	st := func(p types.ProcID) string {
		if s, ok := c.status[p]; ok {
			return s
		}
		return "unblocked"
	}
	switch e := ev.(type) {
	case ESend:
		if !c.crashed[e.P] && st(e.P) == "blocked" {
			c.failf("%s sent #%d while blocked: violates the blocking-client contract", e.P, e.MsgID)
		}
	case EBlock:
		if !c.crashed[e.P] {
			c.status[e.P] = "requested"
		}
	case EBlockOK:
		if c.crashed[e.P] {
			return
		}
		if st(e.P) != "requested" {
			c.failf("%s acknowledged block_ok without an outstanding block request (status %s)",
				e.P, st(e.P))
		}
		c.status[e.P] = "blocked"
	case EView:
		if !c.crashed[e.P] {
			c.status[e.P] = "unblocked"
		}
	case ECrash:
		c.crashed[e.P] = true
	case ERecover:
		c.crashed[e.P] = false
		c.status[e.P] = "unblocked"
	}
}

// Finalize implements Checker.
func (c *BlockingClient) Finalize() {}

var _ Checker = (*BlockingClient)(nil)
