package spec

import (
	"errors"
	"fmt"
	"strings"

	"vsgm/internal/types"
)

// CheckConvergence evaluates the arbitrary-state convergence property on a
// retained trace: once injection ceases (everything at trace index >= after
// is post-chaos), every client in clients must install a membership view
// over exactly want within a bounded number of reconfiguration rounds, and
// the final views must agree.
//
// This is the checkable core of practically-self-stabilizing virtual
// synchrony: no matter what state the adversary scrambled a server into —
// corrupted WAL bytes, wrapped epochs, arbitrary in-memory records — the
// sanitize-and-reattach machinery must reach a legal aligned state again,
// and must do so within budget misaligned views per client, not merely
// eventually.
//
// Concretely, for each p in clients:
//
//   - p's last membership view in the whole trace must have member set
//     exactly want (it converged, and stayed converged);
//   - among p's views at index >= after, at most budget may precede its
//     first aligned view (bounded convergence, not just eventual);
//   - every client's final view must carry the same view key (agreement).
//
// A client with no views at all fails; a client whose last view precedes
// `after` passes the bound vacuously (it was aligned before the mark and
// nothing disturbed it).
func CheckConvergence(trace []Event, after int, clients, want types.ProcSet, budget int) error {
	if after < 0 {
		after = 0
	}
	if after > len(trace) {
		after = len(trace)
	}
	last := make(map[types.ProcID]types.View)
	for _, ev := range trace {
		if mv, ok := ev.(EMView); ok {
			last[mv.P] = mv.View
		}
	}
	// Misaligned views installed after the mark, per client, up to the first
	// aligned one.
	misaligned := make(map[types.ProcID]int)
	aligned := make(map[types.ProcID]bool)
	for _, ev := range trace[after:] {
		mv, ok := ev.(EMView)
		if !ok || aligned[mv.P] {
			continue
		}
		if mv.View.Members.Equal(want) {
			aligned[mv.P] = true
		} else {
			misaligned[mv.P]++
		}
	}

	var msgs []string
	finalKey := ""
	for _, p := range clients.Sorted() {
		v, ok := last[p]
		if !ok {
			msgs = append(msgs, fmt.Sprintf("%s never installed a membership view", p))
			continue
		}
		if !v.Members.Equal(want) {
			msgs = append(msgs, fmt.Sprintf(
				"%s's final view %d has %d members, want the full population of %d",
				p, v.ID, v.Members.Len(), want.Len()))
			continue
		}
		if n := misaligned[p]; n > budget {
			msgs = append(msgs, fmt.Sprintf(
				"%s installed %d misaligned views after injection ceased, budget %d", p, n, budget))
		}
		if finalKey == "" {
			finalKey = v.Key()
		} else if v.Key() != finalKey {
			msgs = append(msgs, fmt.Sprintf(
				"%s's final view %s disagrees with its peers' %s", p, v.Key(), finalKey))
		}
	}
	if len(msgs) == 0 {
		return nil
	}
	return errors.New("convergence: " + strings.Join(msgs, "\n  "))
}
