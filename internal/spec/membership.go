package spec

import "vsgm/internal/types"

// Membership checks the MBRSHP specification (Figure 2) over the membership
// events of a trace:
//
//   - start_change identifiers are locally increasing and include the
//     recipient in the proposed set;
//   - view identifiers are locally monotone;
//   - every view is preceded by a start_change (mode discipline), its member
//     set is a subset of that start_change's set, it includes the recipient,
//     and its startId entry for the recipient equals the latest cid.
//
// It validates any membership implementation — the controllable oracle as
// well as the distributed server group.
type Membership struct {
	base

	view    map[types.ProcID]types.View
	lastSC  map[types.ProcID]types.StartChange
	mode    map[types.ProcID]string
	crashed map[types.ProcID]bool
}

// NewMembership returns a checker for the MBRSHP specification.
func NewMembership() *Membership {
	return &Membership{
		base:    base{name: "MBRSHP:SPEC"},
		view:    make(map[types.ProcID]types.View),
		lastSC:  make(map[types.ProcID]types.StartChange),
		mode:    make(map[types.ProcID]string),
		crashed: make(map[types.ProcID]bool),
	}
}

// OnEvent implements Checker.
func (c *Membership) OnEvent(ev Event) {
	switch e := ev.(type) {
	case EMStartChange:
		last, seen := c.lastSC[e.P]
		if !seen {
			last = types.StartChange{ID: types.InitialStartChangeID}
		}
		if e.SC.ID <= last.ID {
			c.failf("%s received start_change cid %d after cid %d: identifiers must increase",
				e.P, e.SC.ID, last.ID)
		}
		if !e.SC.Set.Contains(e.P) {
			c.failf("%s received start_change with set %s not containing itself", e.P, e.SC.Set)
		}
		c.lastSC[e.P] = e.SC
		c.mode[e.P] = "change_started"

	case EMView:
		cur, seen := c.view[e.P]
		if !seen {
			cur = types.InitialView(e.P)
		}
		if e.View.ID <= cur.ID {
			c.failf("%s received membership view id %d after id %d: violates Local Monotonicity",
				e.P, e.View.ID, cur.ID)
		}
		if !e.View.Contains(e.P) {
			c.failf("%s received membership view %s without itself: violates Self Inclusion",
				e.P, e.View)
		}
		if c.mode[e.P] != "change_started" {
			c.failf("%s received membership view %s without a preceding start_change", e.P, e.View)
		}
		last := c.lastSC[e.P]
		if !e.View.Members.SubsetOf(last.Set) {
			c.failf("%s received view members %s not a subset of start_change set %s",
				e.P, e.View.Members, last.Set)
		}
		if sid, ok := e.View.StartID[e.P]; !ok || sid != last.ID {
			c.failf("%s received view with startId(%s)=%d, want latest cid %d",
				e.P, e.P, sid, last.ID)
		}
		c.view[e.P] = e.View
		c.mode[e.P] = "normal"

	case ECrash:
		c.crashed[e.P] = true

	case ERecover:
		// The membership service itself does not crash; recover_p resets
		// mode[p] to normal while identifier state is preserved (Section 8).
		c.crashed[e.P] = false
		c.mode[e.P] = "normal"
	}
}

// Finalize implements Checker.
func (c *Membership) Finalize() {}

var _ Checker = (*Membership)(nil)
