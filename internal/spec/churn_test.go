package spec

import (
	"strings"
	"testing"

	"vsgm/internal/types"
)

func TestCheckChurnAccepts(t *testing.T) {
	clients := types.NewProcSet("a", "b")
	trace := []Event{
		mview("a", 1, "a"), // before the mark: not counted
		mview("a", 2, "a"),
		mview("a", 3, "a", "b"),
		mview("b", 3, "a", "b"),
	}
	// 2 transitions x budget 1 = 2 views allowed per client; "a" installs 2
	// after the mark, "b" installs 1.
	if err := CheckChurn(trace, 1, 2, 1, clients); err != nil {
		t.Fatalf("bounded churn rejected: %v", err)
	}
	// With zero transitions the budget alone bounds the window.
	if err := CheckChurn(trace, 1, 0, 2, clients); err != nil {
		t.Fatalf("spontaneous churn within budget rejected: %v", err)
	}
	// Views by processes outside the client set are not charged.
	noisy := append([]Event{mview("zzz", 9, "zzz")}, trace...)
	if err := CheckChurn(noisy, 0, 1, 3, clients); err != nil {
		t.Fatalf("stranger views charged to the clients: %v", err)
	}
}

func TestCheckChurnRejects(t *testing.T) {
	clients := types.NewProcSet("a")
	trace := []Event{
		mview("a", 1, "a"),
		mview("a", 2, "a"),
		mview("a", 3, "a"),
		mview("a", 4, "a"),
	}
	err := CheckChurn(trace, 0, 3, 1, clients)
	if err == nil || !strings.Contains(err.Error(), "installed 4 membership views") {
		t.Fatalf("err = %v, want churn violation", err)
	}
	if err := CheckChurn(trace, 0, 1, 0, clients); err == nil {
		t.Fatal("zero budget accepted")
	}
}
