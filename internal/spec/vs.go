package spec

import (
	"fmt"
	"sort"
	"strings"

	"vsgm/internal/types"
)

// VSRFIFO checks the Virtual Synchrony property added by VS_RFIFO : SPEC
// (Figure 5): all processes that move together from view v to view v'
// deliver the same set of messages in v. Because delivery is gap-free FIFO
// (checked by WVRFIFO), the delivered set is captured by the per-sender
// last-delivered indices at the moment of the view change — the cut.
type VSRFIFO struct {
	base

	views   map[types.ProcID]procView
	counts  map[types.ProcID]types.Cut
	cuts    map[string]types.Cut // (fromKey -> toKey) -> agreed cut
	cutsBy  map[string]types.ProcID
	crashed map[types.ProcID]bool
}

// NewVSRFIFO returns a checker for VS_RFIFO : SPEC.
func NewVSRFIFO() *VSRFIFO {
	return &VSRFIFO{
		base:    base{name: "VS_RFIFO:SPEC"},
		views:   make(map[types.ProcID]procView),
		counts:  make(map[types.ProcID]types.Cut),
		cuts:    make(map[string]types.Cut),
		cutsBy:  make(map[string]types.ProcID),
		crashed: make(map[types.ProcID]bool),
	}
}

func (c *VSRFIFO) viewOf(p types.ProcID) procView {
	if pv, ok := c.views[p]; ok {
		return pv
	}
	pv := procView{view: types.InitialView(p)}
	c.views[p] = pv
	return pv
}

// OnEvent implements Checker.
func (c *VSRFIFO) OnEvent(ev Event) {
	switch e := ev.(type) {
	case EDeliver:
		if c.crashed[e.P] {
			return
		}
		cut := c.counts[e.P]
		if cut == nil {
			cut = make(types.Cut)
			c.counts[e.P] = cut
		}
		cut[e.From]++

	case EView:
		if c.crashed[e.P] {
			return
		}
		from := c.viewOf(e.P)
		key := from.key() + "->" + e.View.Key()
		cut := c.counts[e.P]
		if cut == nil {
			cut = make(types.Cut)
		}
		if agreed, ok := c.cuts[key]; ok {
			if !cutsEqual(agreed, cut) {
				c.failf("%s moved %s with cut %s but %s moved with cut %s: violates Virtual Synchrony",
					e.P, key, fmtCut(cut), c.cutsBy[key], fmtCut(agreed))
			}
		} else {
			c.cuts[key] = cut.Clone()
			c.cutsBy[key] = e.P
		}
		c.views[e.P] = procView{view: e.View, epoch: from.epoch}
		c.counts[e.P] = make(types.Cut)

	case ECrash:
		c.crashed[e.P] = true

	case ERecover:
		c.crashed[e.P] = false
		pv := c.viewOf(e.P)
		c.views[e.P] = procView{view: types.InitialView(e.P), epoch: pv.epoch + 1}
		c.counts[e.P] = make(types.Cut)
	}
}

// Finalize implements Checker; Virtual Synchrony has no end-of-trace
// obligations.
func (c *VSRFIFO) Finalize() {}

// cutsEqual treats absent entries as zero: a process that delivered nothing
// from some sender has the same cut entry as one whose map omits the sender.
func cutsEqual(a, b types.Cut) bool {
	for q, n := range a {
		if b[q] != n {
			return false
		}
	}
	for q, n := range b {
		if a[q] != n {
			return false
		}
	}
	return true
}

func fmtCut(c types.Cut) string {
	procs := make([]string, 0, len(c))
	for q, n := range c {
		if n != 0 {
			procs = append(procs, fmt.Sprintf("%s:%d", q, n))
		}
	}
	sort.Strings(procs)
	return "[" + strings.Join(procs, " ") + "]"
}

var _ Checker = (*VSRFIFO)(nil)
