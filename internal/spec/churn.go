package spec

import (
	"errors"
	"fmt"
	"strings"

	"vsgm/internal/types"
)

// CheckChurn evaluates the bounded-view-churn property on a retained trace:
// from trace index `after`, no client in clients may install more than
// budget membership views per chaos transition, where transitions counts
// the adversary's reachability flips (every block and every heal is one).
//
// This is the checkable core of flap damping: an undamped detector turns a
// flapping link into one reconfiguration per flip — or worse, an unbounded
// oscillation of competing attempts — while a damped one converges each
// flurry of transitions to a bounded number of installed views. The bound
// is per transition, not absolute, so the same budget serves a two-flip
// blip and a long flapping storm.
//
// With transitions == 0 the adversary did nothing, and the budget alone
// bounds the whole window (spontaneous churn is still churn).
func CheckChurn(trace []Event, after int, transitions, budget int, clients types.ProcSet) error {
	if after < 0 {
		after = 0
	}
	if after > len(trace) {
		after = len(trace)
	}
	if budget <= 0 {
		return fmt.Errorf("churn: budget must be positive, got %d", budget)
	}
	allowed := budget
	if transitions > 0 {
		allowed = transitions * budget
	}
	views := make(map[types.ProcID]int)
	for _, ev := range trace[after:] {
		if mv, ok := ev.(EMView); ok && clients.Contains(mv.P) {
			views[mv.P]++
		}
	}
	var msgs []string
	for _, p := range clients.Sorted() {
		if n := views[p]; n > allowed {
			msgs = append(msgs, fmt.Sprintf(
				"%s installed %d membership views across %d chaos transitions, budget %d (%d per transition)",
				p, n, transitions, allowed, budget))
		}
	}
	if len(msgs) == 0 {
		return nil
	}
	return errors.New("churn: " + strings.Join(msgs, "\n  "))
}
