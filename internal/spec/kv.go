package spec

import (
	"fmt"
	"sort"
)

// KVAck records one acknowledged write: the service told a client that its
// set (or delete) of Key was durably applied. Seq orders acknowledgments of
// the same key (assign from any monotonic per-key or global counter).
// Deleted distinguishes an acknowledged delete from an acknowledged set.
type KVAck struct {
	Key     string
	Value   string
	Seq     int64
	Deleted bool
}

// CheckNoLostAckedWrites verifies the sharded KV's durability contract: for
// every key, the write with the highest acknowledged Seq must still be
// observable through lookup — an acknowledged set must read back its value,
// an acknowledged delete must read back absence. Any acknowledged write may
// be superseded by a later acknowledged write to the same key, but never
// silently lost (the invariant a reshard, partition, or crash is not allowed
// to break).
func CheckNoLostAckedWrites(acks []KVAck, lookup func(key string) (string, bool)) error {
	last := make(map[string]KVAck, len(acks))
	for _, a := range acks {
		if cur, ok := last[a.Key]; !ok || a.Seq >= cur.Seq {
			last[a.Key] = a
		}
	}
	keys := make([]string, 0, len(last))
	for k := range last {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		a := last[k]
		v, ok := lookup(k)
		if a.Deleted {
			if ok {
				return fmt.Errorf("spec: key %q reads %q after its delete was acknowledged (seq %d)", k, v, a.Seq)
			}
			continue
		}
		if !ok {
			return fmt.Errorf("spec: acknowledged write %q=%q (seq %d) was lost: key absent", k, a.Value, a.Seq)
		}
		if v != a.Value {
			return fmt.Errorf("spec: acknowledged write %q=%q (seq %d) was lost: key reads %q", k, a.Value, a.Seq, v)
		}
	}
	return nil
}
