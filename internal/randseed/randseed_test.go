package randseed

import "testing"

func TestPickHonorsEnvOverride(t *testing.T) {
	t.Setenv(EnvVar, "12345")
	if seed, ok := Pick(7); !ok || seed != 12345 {
		t.Fatalf("Pick(7) with %s=12345 = (%d, %v), want (12345, true)", EnvVar, seed, ok)
	}
	if seed, ok := FromEnv(); !ok || seed != 12345 {
		t.Fatalf("FromEnv = (%d, %v), want (12345, true)", seed, ok)
	}
}

func TestPickDefaultsWithoutOverride(t *testing.T) {
	t.Setenv(EnvVar, "")
	if seed, ok := Pick(7); ok || seed != 7 {
		t.Fatalf("Pick(7) = (%d, %v), want (7, false)", seed, ok)
	}
	t.Setenv(EnvVar, "not-a-number")
	if _, ok := FromEnv(); ok {
		t.Fatalf("FromEnv must reject a non-numeric %s", EnvVar)
	}
}
