// Package randseed resolves the PRNG seed for randomized tests and soak
// runs. Every randomized execution in this repository logs the seed it
// ran under and honors the VSGM_SEED environment variable as an override,
// so any failure replays deterministically:
//
//	VSGM_SEED=<seed from the failure log> go test -run <TestName> ./...
//
// See docs/TESTING.md ("Replaying a randomized failure") for the workflow.
package randseed

import (
	"os"
	"strconv"
)

// EnvVar is the environment variable that overrides randomized seeds.
const EnvVar = "VSGM_SEED"

// FromEnv returns the seed override from VSGM_SEED, if set and numeric.
func FromEnv() (int64, bool) {
	v := os.Getenv(EnvVar)
	if v == "" {
		return 0, false
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, false
	}
	return seed, true
}

// Pick returns the VSGM_SEED override when present, else def, along with
// whether the environment supplied it.
func Pick(def int64) (seed int64, overridden bool) {
	if s, ok := FromEnv(); ok {
		return s, true
	}
	return def, false
}
