package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"vsgm/internal/membership"
	"vsgm/internal/types"
)

func sampleView(r *rand.Rand) types.View {
	members := types.NewProcSet()
	startID := make(map[types.ProcID]types.StartChangeID)
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		p := types.ProcID(string(rune('a' + r.Intn(6))))
		members.Add(p)
		startID[p] = types.StartChangeID(r.Intn(10))
	}
	return types.NewView(types.ViewID(r.Intn(100)), members, startID)
}

func sampleCut(r *rand.Rand) types.Cut {
	if r.Intn(4) == 0 {
		return nil
	}
	c := make(types.Cut)
	for i := 0; i < r.Intn(4); i++ {
		c[types.ProcID(string(rune('a'+r.Intn(6))))] = r.Intn(50)
	}
	if len(c) == 0 {
		return nil // the codec canonicalizes empty to nil
	}
	return c
}

func sampleMsg(r *rand.Rand) types.WireMsg {
	switch r.Intn(9) {
	case 0:
		return types.WireMsg{Kind: types.KindView, View: sampleView(r)}
	case 1:
		payload := make([]byte, r.Intn(32))
		r.Read(payload)
		return types.WireMsg{
			Kind:      types.KindApp,
			App:       types.AppMsg{ID: r.Int63(), Payload: payload},
			HistView:  sampleView(r),
			HistIndex: r.Intn(100),
		}
	case 2:
		return types.WireMsg{
			Kind:   types.KindFwd,
			App:    types.AppMsg{ID: r.Int63(), Payload: []byte("fwd")},
			Origin: "x",
			View:   sampleView(r),
			Index:  1 + r.Intn(20),
		}
	case 3:
		return types.WireMsg{
			Kind:      types.KindSync,
			CID:       types.StartChangeID(r.Intn(50)),
			Small:     r.Intn(2) == 0,
			ElideView: r.Intn(2) == 0,
			Probe:     r.Intn(2) == 0,
			View:      sampleView(r),
			Cut:       sampleCut(r),
		}
	case 4:
		return types.WireMsg{Kind: types.KindAck, Cut: sampleCut(r)}
	case 5:
		m := types.WireMsg{Kind: types.KindHeartbeat}
		if r.Intn(2) == 0 {
			set := types.NewProcSet()
			n := 1 + r.Intn(4)
			for i := 0; i < n; i++ {
				set.Add(types.ProcID(string(rune('a' + r.Intn(6)))))
			}
			m.Reach = set
		}
		return m
	case 6:
		return types.WireMsg{Kind: types.KindPropose, View: sampleView(r)}
	case 7:
		clients := make(map[types.ProcID]types.StartChangeID)
		for i := 0; i < r.Intn(3); i++ {
			clients[types.ProcID(string(rune('p'+r.Intn(4))))] = types.StartChangeID(r.Intn(9))
		}
		var epochs map[types.ProcID]int64
		for i := 0; i < r.Intn(3); i++ {
			if epochs == nil {
				epochs = make(map[types.ProcID]int64)
			}
			epochs[types.ProcID(string(rune('p'+r.Intn(4))))] = 1 + r.Int63n(8)
		}
		return types.WireMsg{Kind: types.KindMembProposal, MembProp: &types.MembProposal{
			Attempt: r.Int63n(100),
			Servers: types.NewProcSet("s0", "s1"),
			MinVid:  types.ViewID(r.Intn(40)),
			Clients: clients,
			Epochs:  epochs,
		}}
	default:
		var bundle []types.SyncEntry
		for i := 0; i < 1+r.Intn(3); i++ {
			bundle = append(bundle, types.SyncEntry{
				From:  types.ProcID(string(rune('a' + r.Intn(6)))),
				CID:   types.StartChangeID(r.Intn(30)),
				Small: r.Intn(2) == 0,
				View:  sampleView(r),
				Cut:   sampleCut(r),
			})
		}
		return types.WireMsg{Kind: types.KindSyncBundle, Bundle: bundle}
	}
}

// msgEqual compares messages structurally, treating views by their triples.
func msgEqual(a, b types.WireMsg) bool {
	if a.Kind != b.Kind || a.Origin != b.Origin || a.Index != b.Index ||
		a.CID != b.CID || a.Small != b.Small || a.ElideView != b.ElideView ||
		a.Probe != b.Probe || a.HistIndex != b.HistIndex {
		return false
	}
	if !a.View.Equal(b.View) || !a.HistView.Equal(b.HistView) {
		return false
	}
	if a.App.ID != b.App.ID || !bytes.Equal(a.App.Payload, b.App.Payload) {
		return false
	}
	if (a.Cut == nil) != (b.Cut == nil) || (a.Cut != nil && !a.Cut.Equal(b.Cut)) {
		return false
	}
	if (a.MembProp == nil) != (b.MembProp == nil) {
		return false
	}
	if (a.Reach == nil) != (b.Reach == nil) {
		return false
	}
	if a.Reach != nil && !a.Reach.Equal(b.Reach) {
		return false
	}
	if a.MembProp != nil {
		if a.MembProp.Attempt != b.MembProp.Attempt || a.MembProp.MinVid != b.MembProp.MinVid ||
			!a.MembProp.Servers.Equal(b.MembProp.Servers) ||
			!reflect.DeepEqual(a.MembProp.Clients, b.MembProp.Clients) ||
			!reflect.DeepEqual(a.MembProp.Epochs, b.MembProp.Epochs) {
			return false
		}
	}
	if len(a.Bundle) != len(b.Bundle) {
		return false
	}
	for i := range a.Bundle {
		x, y := a.Bundle[i], b.Bundle[i]
		if x.From != y.From || x.CID != y.CID || x.Small != y.Small ||
			!x.View.Equal(y.View) {
			return false
		}
		if (x.Cut == nil) != (y.Cut == nil) || (x.Cut != nil && !x.Cut.Equal(y.Cut)) {
			return false
		}
	}
	return true
}

func TestMsgRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 400,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(sampleMsg(r))
		},
	}
	roundTrip := func(m types.WireMsg) bool {
		b, err := MarshalMsg(m)
		if err != nil {
			t.Logf("marshal: %v", err)
			return false
		}
		got, rest, err := UnmarshalMsg(b)
		if err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		if len(rest) != 0 {
			t.Logf("trailing bytes: %d", len(rest))
			return false
		}
		if !msgEqual(m, got) {
			t.Logf("mismatch:\n in: %+v\nout: %+v", m, got)
			return false
		}
		return true
	}
	if err := quick.Check(roundTrip, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalIsDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		m := sampleMsg(r)
		a, err := MarshalMsg(m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MarshalMsg(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("non-deterministic encoding for %+v", m)
		}
	}
}

func TestUnmarshalRejectsCorruptInput(t *testing.T) {
	m := types.WireMsg{
		Kind: types.KindSync, CID: 3,
		View: types.InitialView("a"), Cut: types.Cut{"a": 1},
	}
	b, err := MarshalMsg(m)
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must fail cleanly, never panic.
	for i := 0; i < len(b); i++ {
		if _, _, err := UnmarshalMsg(b[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	if _, _, err := UnmarshalMsg([]byte{99}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestFrameRoundTripAndStream(t *testing.T) {
	frames := []Frame{
		{From: "a"}, // handshake
		{From: "a", Msg: &types.WireMsg{Kind: types.KindHeartbeat}},
		{From: "srv", Notify: &membership.Notification{
			Kind:        membership.NotifyStartChange,
			StartChange: types.StartChange{ID: 4, Set: types.NewProcSet("a", "b")},
		}},
		{From: "srv", Notify: &membership.Notification{
			Kind: membership.NotifyView,
			View: types.NewView(2, types.NewProcSet("a"), map[types.ProcID]types.StartChangeID{"a": 4}),
		}},
		{From: "a", Attach: &Attach{Kind: AttachRequest, Client: "a", Epoch: 3}},
		{From: "srv", Attach: &Attach{Kind: AttachAck, Client: "a", Epoch: 3, CID: 3 << 32, Vid: 9}},
		{From: "a", Attach: &Attach{Kind: AttachDetach, Client: "a", Epoch: 2}},
		{From: "a", Attach: &Attach{Kind: AttachSuspect, Client: "b"}},
		{From: "a", Credit: &Credit{Grant: 0}},
		{From: "a", Credit: &Credit{Grant: 1<<64 - 1}},
		{From: "s0-p00", Handoff: &Handoff{Reshard: "r-7", Shard: 1, Seq: 0, Data: []byte("chunk")}},
		{From: "s0-p00", Handoff: &Handoff{Reshard: "r-7", Shard: 1, Seq: 3, Last: true}},
	}

	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, f := range frames {
		if err := enc.Encode(f); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf)
	for i, want := range frames {
		var got Frame
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.From != want.From {
			t.Fatalf("frame %d from = %s", i, got.From)
		}
		if (got.Msg == nil) != (want.Msg == nil) || (got.Notify == nil) != (want.Notify == nil) ||
			(got.Attach == nil) != (want.Attach == nil) || (got.Credit == nil) != (want.Credit == nil) ||
			(got.Handoff == nil) != (want.Handoff == nil) {
			t.Fatalf("frame %d shape mismatch: %+v", i, got)
		}
		if want.Attach != nil && *got.Attach != *want.Attach {
			t.Fatalf("frame %d attach mismatch: got %+v want %+v", i, *got.Attach, *want.Attach)
		}
		if want.Credit != nil && *got.Credit != *want.Credit {
			t.Fatalf("frame %d credit mismatch: got %+v want %+v", i, *got.Credit, *want.Credit)
		}
		if want.Handoff != nil {
			g, w := *got.Handoff, *want.Handoff
			if g.Reshard != w.Reshard || g.Shard != w.Shard || g.Seq != w.Seq ||
				g.Last != w.Last || !bytes.Equal(g.Data, w.Data) {
				t.Fatalf("frame %d handoff mismatch: got %+v want %+v", i, g, w)
			}
		}
	}
}

// TestFrameClassification pins the flow-control plane split: only
// application data frames are credit-gated and sheddable, heartbeats are
// coalescible, and everything else — sync, acks, proposals, notifications,
// attach traffic, credits themselves — is control-plane and must never be
// dropped by a full queue.
func TestFrameClassification(t *testing.T) {
	v := types.NewView(2, types.NewProcSet("a"), map[types.ProcID]types.StartChangeID{"a": 1})
	cases := []struct {
		name string
		f    Frame
		want FrameClass
	}{
		{"handshake", Frame{From: "a"}, ClassControl},
		{"app", Frame{From: "a", Msg: &types.WireMsg{Kind: types.KindApp}}, ClassData},
		{"fwd", Frame{From: "a", Msg: &types.WireMsg{Kind: types.KindFwd}}, ClassControl},
		{"sync", Frame{From: "a", Msg: &types.WireMsg{Kind: types.KindSync, View: v}}, ClassControl},
		{"ack", Frame{From: "a", Msg: &types.WireMsg{Kind: types.KindAck}}, ClassControl},
		{"heartbeat", Frame{From: "a", Msg: &types.WireMsg{Kind: types.KindHeartbeat}}, ClassHeartbeat},
		{"notify", Frame{From: "a", Notify: &membership.Notification{Kind: membership.NotifyView, View: v}}, ClassControl},
		{"attach", Frame{From: "a", Attach: &Attach{Kind: AttachRequest, Client: "a"}}, ClassControl},
		{"credit", Frame{From: "a", Credit: &Credit{Grant: 5}}, ClassControl},
		{"handoff", Frame{From: "a", Handoff: &Handoff{Reshard: "r", Data: []byte("x")}}, ClassData},
	}
	for _, tc := range cases {
		fb, err := EncodeFrame(tc.f)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		if got := fb.Class(); got != tc.want {
			t.Errorf("%s: class = %d, want %d", tc.name, got, tc.want)
		}
		fb.Release()
	}
}

func TestDecoderRejectsOversizedFrames(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // absurd length prefix
	var f Frame
	if err := NewDecoder(&buf).Decode(&f); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func BenchmarkMarshalSync(b *testing.B) {
	v := types.NewView(3, types.NewProcSet("a", "b", "c", "d"),
		map[types.ProcID]types.StartChangeID{"a": 1, "b": 2, "c": 3, "d": 4})
	m := types.WireMsg{Kind: types.KindSync, CID: 9, View: v,
		Cut: types.Cut{"a": 10, "b": 20, "c": 30, "d": 40}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MarshalMsg(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalSync(b *testing.B) {
	v := types.NewView(3, types.NewProcSet("a", "b", "c", "d"),
		map[types.ProcID]types.StartChangeID{"a": 1, "b": 2, "c": 3, "d": 4})
	enc, err := MarshalMsg(types.WireMsg{Kind: types.KindSync, CID: 9, View: v,
		Cut: types.Cut{"a": 10, "b": 20, "c": 30, "d": 40}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := UnmarshalMsg(enc); err != nil {
			b.Fatal(err)
		}
	}
}
