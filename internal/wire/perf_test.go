package wire

// Allocation-regression tests and benchmarks for the marshal hot path: the
// codec must encode without per-call scratch allocations (no bool-map
// literals, pooled frame buffers), and the batch encoder must coalesce many
// frames into few flushes without disturbing frame boundaries.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"vsgm/internal/types"
)

func smallView() types.View {
	return types.NewView(7, types.NewProcSet("a", "b"),
		map[types.ProcID]types.StartChangeID{"a": 1, "b": 2})
}

// smallAppFrame is the steady-state multicast frame: one application message
// with its history view, the unit the live transport fans out.
func smallAppFrame() Frame {
	m := types.WireMsg{
		Kind:      types.KindApp,
		App:       types.AppMsg{ID: 42, Payload: []byte("payload!")},
		HistView:  smallView(),
		HistIndex: 3,
	}
	return Frame{From: "a", Msg: &m}
}

// TestBoolEncodeNoAllocs pins the satellite fix: encoding a bool field is a
// branch, not a map literal built per call.
func TestBoolEncodeNoAllocs(t *testing.T) {
	w := buffer{b: make([]byte, 0, 16)}
	if got := testing.AllocsPerRun(1000, func() {
		w.b = w.b[:0]
		w.bool(true)
		w.bool(false)
	}); got != 0 {
		t.Fatalf("bool encode allocates %.1f times per run, want 0", got)
	}
	w.b = w.b[:0]
	w.bool(true)
	w.bool(false)
	if !bytes.Equal(w.b, []byte{1, 0}) {
		t.Fatalf("bool encoding = %v, want [1 0]", w.b)
	}
}

// TestSmallFrameMarshalAllocs bounds the marshal cost of a small app frame
// into a reused buffer. The only remaining allocations are the sorted
// member slices of the embedded view (2 with the stdlib sort); the bool-map
// and buffer-growth allocations must be gone.
func TestSmallFrameMarshalAllocs(t *testing.T) {
	f := smallAppFrame()
	dst := make([]byte, 0, 256)
	got := testing.AllocsPerRun(1000, func() {
		b, err := AppendFrame(dst[:0], f)
		if err != nil || len(b) == 0 {
			t.Fatal("marshal failed")
		}
	})
	// One Sorted() slice plus sort.Slice bookkeeping; anything above 4 means
	// a per-call scratch allocation crept back into the codec.
	if got > 4 {
		t.Fatalf("small app frame marshal allocates %.1f times per run, want <= 4", got)
	}
}

// TestSyncFrameMarshalAllocs covers the bool-heavy sync frame: two bool
// fields used to cost two map allocations each marshal.
func TestSyncFrameMarshalAllocs(t *testing.T) {
	m := types.WireMsg{Kind: types.KindSync, CID: 9, Small: true, View: smallView(),
		Cut: types.Cut{"a": 10, "b": 20}}
	f := Frame{From: "a", Msg: &m}
	dst := make([]byte, 0, 256)
	got := testing.AllocsPerRun(1000, func() {
		if _, err := AppendFrame(dst[:0], f); err != nil {
			t.Fatal(err)
		}
	})
	// View.Sorted + cut's sorted proc slice (+ sort internals). Before the
	// bool fix this path paid two extra map allocations per marshal.
	if got > 8 {
		t.Fatalf("sync frame marshal allocates %.1f times per run, want <= 8", got)
	}
}

// TestEncodeFramePoolSteadyState: once the pool is warm, encoding a
// heartbeat frame (no embedded sets, so no sort scratch) allocates nothing.
func TestEncodeFramePoolSteadyState(t *testing.T) {
	m := types.WireMsg{Kind: types.KindHeartbeat}
	f := Frame{From: "srv0", Msg: &m}
	if got := testing.AllocsPerRun(1000, func() {
		fb, err := EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		fb.Release()
	}); got > 0 {
		t.Fatalf("pooled heartbeat encode allocates %.1f times per run, want 0", got)
	}
}

// TestFrameBufRetainRelease exercises the fan-out contract: N consumers of
// one buffer, each releasing once; the bytes stay valid until the last.
func TestFrameBufRetainRelease(t *testing.T) {
	fb, err := EncodeFrame(smallAppFrame())
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), fb.Bytes()...)
	fb.Retain(7) // 8 consumers total
	for i := 0; i < 7; i++ {
		if !bytes.Equal(fb.Bytes(), want) {
			t.Fatalf("shared bytes changed before final release (consumer %d)", i)
		}
		fb.Release()
	}
	fb.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("over-release must panic")
		}
	}()
	fb.Release()
}

// countingWriter counts the Write calls it absorbs — with a bufio.Writer in
// front, one count per flush.
type countingWriter struct {
	bytes.Buffer
	writes int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.writes++
	return c.Buffer.Write(p)
}

// TestEncodeBatchCoalescesFlushes writes a burst through EncodeBatch and
// asserts (a) a single uncapped batch reaches the stream in one write, (b)
// every frame survives intact and in order, (c) a byte cap splits the batch
// into multiple flushes without corrupting boundaries.
func TestEncodeBatchCoalescesFlushes(t *testing.T) {
	mkFrames := func(n int) ([][]byte, []Frame) {
		var encs [][]byte
		var frames []Frame
		for i := 0; i < n; i++ {
			m := types.WireMsg{Kind: types.KindApp,
				App: types.AppMsg{ID: int64(i), Payload: []byte(fmt.Sprintf("m-%03d", i))}}
			f := Frame{From: "a", Msg: &m}
			b, err := MarshalFrame(f)
			if err != nil {
				t.Fatal(err)
			}
			encs = append(encs, b)
			frames = append(frames, f)
		}
		return encs, frames
	}
	decodeAll := func(raw *countingWriter, want []Frame) {
		t.Helper()
		dec := NewDecoder(&raw.Buffer)
		for i := range want {
			var got Frame
			if err := dec.Decode(&got); err != nil {
				t.Fatalf("frame %d failed to decode after coalescing: %v", i, err)
			}
			if got.Msg == nil || got.Msg.App.ID != want[i].Msg.App.ID ||
				!bytes.Equal(got.Msg.App.Payload, want[i].Msg.App.Payload) {
				t.Fatalf("frame %d corrupted by coalescing", i)
			}
		}
	}

	// Uncapped: one flush, one underlying write.
	raw := &countingWriter{}
	enc := NewEncoder(raw)
	encs, frames := mkFrames(50)
	sent, flushes, err := enc.EncodeBatch(encs, 0)
	if err != nil || sent != 50 {
		t.Fatalf("EncodeBatch = (%d, %d, %v), want all 50 sent", sent, flushes, err)
	}
	if flushes != 1 || raw.writes != 1 {
		t.Errorf("uncapped batch: flushes=%d writes=%d, want 1 and 1", flushes, raw.writes)
	}
	decodeAll(raw, frames)

	// Capped at ~4 frames of bytes: several flushes, same intact stream.
	raw = &countingWriter{}
	enc = NewEncoder(raw)
	encs, frames = mkFrames(50)
	cap := 4 * (len(encs[0]) + 4)
	sent, flushes, err = enc.EncodeBatch(encs, cap)
	if err != nil || sent != 50 {
		t.Fatalf("capped EncodeBatch = (%d, %d, %v), want all 50 sent", sent, flushes, err)
	}
	if flushes < 10 {
		t.Errorf("capped batch: flushes=%d, want >=10 under a 4-frame cap", flushes)
	}
	decodeAll(raw, frames)
}

// failAfterWriter errors on the n+1th Write.
type failAfterWriter struct {
	n      int
	writes int
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > f.n {
		return 0, errors.New("injected write failure")
	}
	return len(p), nil
}

// TestEncodeBatchPartialFailureReportsSent: an error mid-batch reports the
// frames already flushed, so the link supervisor retries exactly the suffix.
func TestEncodeBatchPartialFailureReportsSent(t *testing.T) {
	enc := NewEncoder(&failAfterWriter{n: 2})
	encs, _ := func() ([][]byte, []Frame) {
		var e [][]byte
		for i := 0; i < 10; i++ {
			m := types.WireMsg{Kind: types.KindApp,
				App: types.AppMsg{ID: int64(i), Payload: []byte("xxxx")}}
			b, err := MarshalFrame(Frame{From: "a", Msg: &m})
			if err != nil {
				t.Fatal(err)
			}
			e = append(e, b)
		}
		return e, nil
	}()
	perFrame := len(encs[0]) + 4
	sent, flushes, err := enc.EncodeBatch(encs, perFrame) // flush every frame
	if err == nil {
		t.Fatal("expected the injected write failure")
	}
	if sent != 2 || flushes != 2 {
		t.Fatalf("sent=%d flushes=%d, want exactly the 2 flushed frames reported", sent, flushes)
	}
}

// BenchmarkWireMarshal contrasts the pooled encode-once path against the
// allocating per-destination marshal it replaced. "fanout-N" is the marshal
// cost of one multicast to N destinations under each scheme.
func BenchmarkWireMarshal(b *testing.B) {
	f := smallAppFrame()
	b.Run("append-pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fb, err := EncodeFrame(f)
			if err != nil {
				b.Fatal(err)
			}
			fb.Release()
		}
	})
	b.Run("marshal-alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := MarshalFrame(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("fanout-%d/encode-once", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fb, err := EncodeFrame(f)
				if err != nil {
					b.Fatal(err)
				}
				fb.Retain(int32(n - 1))
				for j := 0; j < n; j++ {
					fb.Release()
				}
			}
		})
		b.Run(fmt.Sprintf("fanout-%d/encode-per-link", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := 0; j < n; j++ {
					if _, err := MarshalFrame(f); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
