package wire

import (
	"errors"

	"vsgm/internal/types"
)

// errBadWALMagic reports a WAL stream whose record tag is not walMagic.
var errBadWALMagic = errors.New("wire: bad WAL record magic")

// WALRecord is one append-only log entry of a membership server's durable
// per-client identifier state: the last start-change identifier issued to
// the client, the last view identifier delivered to it, and the attach
// epoch its registration is held under. A server replays its WAL on restart
// so a bounced server rejoins the static server set without regressing any
// identifier it handed out before the crash (Local Monotonicity, Section 8
// extended to server failures).
//
// Records are self-delimiting — a length-prefixed identifier followed by
// three fixed-width integers — so a log is simply their concatenation and a
// torn tail surfaces as ErrTruncated on the final partial record.
type WALRecord struct {
	Client types.ProcID
	CID    types.StartChangeID
	Vid    types.ViewID
	Epoch  int64
}

// walMagic distinguishes a WAL/snapshot stream from arbitrary bytes; each
// record carries it so replay detects corruption at record granularity.
const walMagic uint8 = 0xA7

// AppendWALRecord encodes rec onto dst and returns the extended slice.
func AppendWALRecord(dst []byte, rec WALRecord) ([]byte, error) {
	w := buffer{b: dst}
	w.u8(walMagic)
	if err := w.id(rec.Client); err != nil {
		return nil, err
	}
	w.u64(uint64(rec.CID))
	w.u64(uint64(rec.Vid))
	w.u64(uint64(rec.Epoch))
	return w.b, nil
}

// DecodeWALRecord decodes one record from the front of b, returning the
// record and the remaining bytes. A short or corrupt input yields
// ErrTruncated or a tag error; callers replaying a log stop at the first
// failure, which tolerates a torn tail from a crash mid-append.
func DecodeWALRecord(b []byte) (WALRecord, []byte, error) {
	r := &reader{b: b}
	magic, err := r.u8()
	if err != nil {
		return WALRecord{}, nil, err
	}
	if magic != walMagic {
		return WALRecord{}, nil, errBadWALMagic
	}
	client, err := r.id()
	if err != nil {
		return WALRecord{}, nil, err
	}
	cid, err := r.u64()
	if err != nil {
		return WALRecord{}, nil, err
	}
	vid, err := r.u64()
	if err != nil {
		return WALRecord{}, nil, err
	}
	epoch, err := r.u64()
	if err != nil {
		return WALRecord{}, nil, err
	}
	return WALRecord{
		Client: client,
		CID:    types.StartChangeID(cid),
		Vid:    types.ViewID(vid),
		Epoch:  int64(epoch),
	}, r.b, nil
}
