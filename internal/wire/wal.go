package wire

import (
	"errors"
	"hash/crc32"

	"vsgm/internal/types"
)

// errBadWALMagic reports a WAL stream whose record tag is neither WAL magic.
var errBadWALMagic = errors.New("wire: bad WAL record magic")

// errBadWALChecksum reports a v2 record whose body does not match its CRC.
var errBadWALChecksum = errors.New("wire: WAL record checksum mismatch")

// errBadWALLength reports a v2 record whose length field is impossible.
var errBadWALLength = errors.New("wire: WAL record length out of range")

// WALRecord is one append-only log entry of a membership server's durable
// per-client identifier state: the last start-change identifier issued to
// the client, the last view identifier delivered to it, and the attach
// epoch its registration is held under. A server replays its WAL on restart
// so a bounced server rejoins the static server set without regressing any
// identifier it handed out before the crash (Local Monotonicity, Section 8
// extended to server failures).
//
// Two encodings exist on disk. The v1 record (magic 0xA7) is a bare
// length-prefixed identifier followed by three fixed-width integers — fully
// self-delimiting but unable to distinguish a flipped byte from a valid
// record. The v2 record (magic 0xA8) frames the same body behind an
// explicit body length and a CRC32C, so corruption is detected at record
// granularity and a scanner can skip damage and resynchronize on the next
// intact record instead of discarding the rest of the log. AppendWALRecord
// emits v2; DecodeWALRecord accepts both, which is the whole migration
// story — old logs replay as-is and compact into v2 snapshots over time.
type WALRecord struct {
	Client types.ProcID
	CID    types.StartChangeID
	Vid    types.ViewID
	Epoch  int64
}

const (
	// walMagicV1 tags the legacy unchecksummed record.
	walMagicV1 uint8 = 0xA7
	// walMagicV2 tags the checksummed, length-framed record.
	walMagicV2 uint8 = 0xA8

	// walV2FixedBody is the body size beyond the identifier bytes: the u16
	// identifier length prefix plus three u64 fields.
	walV2FixedBody = 2 + 8 + 8 + 8
	// walV2MaxBody bounds a plausible v2 body: the longest encodable
	// identifier plus the fixed fields. A claimed length above this is
	// corruption, not a record.
	walV2MaxBody = walV2FixedBody + 0xFFFF
	// walV2Header is magic + u16 body length + u32 CRC32C.
	walV2Header = 1 + 2 + 4
)

// castagnoli is the CRC32C polynomial table (the iSCSI/ext4 choice —
// hardware-accelerated on amd64 and arm64 via hash/crc32).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendWALBody encodes the version-independent record body onto dst.
func appendWALBody(dst []byte, rec WALRecord) ([]byte, error) {
	w := buffer{b: dst}
	if err := w.id(rec.Client); err != nil {
		return nil, err
	}
	w.u64(uint64(rec.CID))
	w.u64(uint64(rec.Vid))
	w.u64(uint64(rec.Epoch))
	return w.b, nil
}

// AppendWALRecord encodes rec onto dst as a v2 (checksummed) record and
// returns the extended slice.
func AppendWALRecord(dst []byte, rec WALRecord) ([]byte, error) {
	w := buffer{b: dst}
	w.u8(walMagicV2)
	// Reserve the length and CRC slots, then encode the body in place.
	start := len(w.b)
	w.u16(0)
	w.u32(0)
	bodyStart := len(w.b)
	b, err := appendWALBody(w.b, rec)
	if err != nil {
		return nil, err
	}
	w.b = b
	body := w.b[bodyStart:]
	w.b[start] = byte(len(body) >> 8)
	w.b[start+1] = byte(len(body))
	crc := crc32.Checksum(body, castagnoli)
	w.b[start+2] = byte(crc >> 24)
	w.b[start+3] = byte(crc >> 16)
	w.b[start+4] = byte(crc >> 8)
	w.b[start+5] = byte(crc)
	return w.b, nil
}

// AppendWALRecordV1 encodes rec in the legacy unchecksummed v1 format. It
// exists for migration fixtures and tests; new logs are always v2.
func AppendWALRecordV1(dst []byte, rec WALRecord) ([]byte, error) {
	w := buffer{b: dst}
	w.u8(walMagicV1)
	return appendWALBody(w.b, rec)
}

// decodeWALBody decodes the version-independent record body.
func decodeWALBody(r *reader) (WALRecord, error) {
	client, err := r.id()
	if err != nil {
		return WALRecord{}, err
	}
	cid, err := r.u64()
	if err != nil {
		return WALRecord{}, err
	}
	vid, err := r.u64()
	if err != nil {
		return WALRecord{}, err
	}
	epoch, err := r.u64()
	if err != nil {
		return WALRecord{}, err
	}
	return WALRecord{
		Client: client,
		CID:    types.StartChangeID(cid),
		Vid:    types.ViewID(vid),
		Epoch:  int64(epoch),
	}, nil
}

// DecodeWALRecord decodes one record (either version) from the front of b,
// returning the record and the remaining bytes. A short or corrupt input
// yields ErrTruncated, a tag error, or a checksum error; naive callers
// replaying a log stop at the first failure (tolerating a torn tail from a
// crash mid-append), while ScanWAL resynchronizes past the damage instead.
func DecodeWALRecord(b []byte) (WALRecord, []byte, error) {
	r := &reader{b: b}
	magic, err := r.u8()
	if err != nil {
		return WALRecord{}, nil, err
	}
	switch magic {
	case walMagicV1:
		rec, err := decodeWALBody(r)
		if err != nil {
			return WALRecord{}, nil, err
		}
		return rec, r.b, nil
	case walMagicV2:
		n, err := r.u16()
		if err != nil {
			return WALRecord{}, nil, err
		}
		if int(n) < walV2FixedBody || int(n) > walV2MaxBody {
			return WALRecord{}, nil, errBadWALLength
		}
		crc, err := r.u32()
		if err != nil {
			return WALRecord{}, nil, err
		}
		body, err := r.take(int(n))
		if err != nil {
			return WALRecord{}, nil, err
		}
		if crc32.Checksum(body, castagnoli) != crc {
			return WALRecord{}, nil, errBadWALChecksum
		}
		br := &reader{b: body}
		rec, err := decodeWALBody(br)
		if err != nil {
			return WALRecord{}, nil, err
		}
		if len(br.b) != 0 {
			// A body longer than its own fields claims means the length and
			// CRC were computed over trailing garbage — corrupt framing.
			return WALRecord{}, nil, errBadWALLength
		}
		return rec, r.b, nil
	default:
		return WALRecord{}, nil, errBadWALMagic
	}
}

// DamagedRange is one contiguous span of undecodable bytes a WAL scan
// skipped: offsets are relative to the start of the scanned input.
type DamagedRange struct {
	Off int
	Len int
}

// End returns the offset one past the damaged span.
func (d DamagedRange) End() int { return d.Off + d.Len }

// WALScan is the result of scanning a (possibly corrupt) WAL or snapshot
// byte stream with skip-and-resync: every record that decoded, where each
// sat, and every byte range that did not decode as any record.
type WALScan struct {
	// Records lists the decoded records in stream order.
	Records []WALRecord
	// Offsets holds the starting offset of each decoded record (parallel to
	// Records), so a repair pass can tell intact bytes from damage exactly.
	Offsets []int
	// V1Records counts how many of Records were legacy v1 encodings — the
	// migration signal: a repair rewrite re-encodes them as v2.
	V1Records int
	// Damaged lists the skipped byte ranges in stream order.
	Damaged []DamagedRange
}

// Clean reports whether the scan decoded the entire input as v2 records.
func (s *WALScan) Clean() bool { return len(s.Damaged) == 0 && s.V1Records == 0 }

// ScanWAL decodes a concatenation of WAL records with skip-and-resync: on a
// decode failure it advances byte by byte until a record decodes again,
// recording the skipped span as damage. One flipped byte therefore costs at
// most the record it sits in (plus any misparse it induces), never the tail
// of the log — the failure mode the v1 replay loop had.
//
// Resynchronization trusts a v2 record wherever its CRC validates (a false
// positive needs a magic byte, a plausible length, and a 1-in-2^32 checksum
// collision). A v1 record has no checksum, so mid-damage bytes that happen
// to parse as v1 can resurrect a bogus record; the membership sanitizer
// exists to defang exactly such records, and new logs are pure v2.
func ScanWAL(b []byte) *WALScan {
	s := &WALScan{}
	off := 0
	damageStart := -1
	for off < len(b) {
		if b[off] == walMagicV1 || b[off] == walMagicV2 {
			rec, rest, err := DecodeWALRecord(b[off:])
			if err == nil {
				if damageStart >= 0 {
					s.Damaged = append(s.Damaged, DamagedRange{Off: damageStart, Len: off - damageStart})
					damageStart = -1
				}
				if b[off] == walMagicV1 {
					s.V1Records++
				}
				s.Records = append(s.Records, rec)
				s.Offsets = append(s.Offsets, off)
				off = len(b) - len(rest)
				continue
			}
		}
		if damageStart < 0 {
			damageStart = off
		}
		off++
	}
	if damageStart >= 0 {
		s.Damaged = append(s.Damaged, DamagedRange{Off: damageStart, Len: len(b) - damageStart})
	}
	return s
}
