package wire

import (
	"vsgm/internal/membership"
	"vsgm/internal/types"
)

// DecodeState is the allocation-amortizing companion of a single frame
// stream: intern tables for the identifiers and views that repeat frame
// after frame, plus reusable scratch for the Frame's pointer fields. One
// DecodeState belongs to one connection (or one event-loop parser) and must
// not be shared across goroutines.
//
// Frames decoded through a DecodeState are BORROWED: their pointer fields
// (Msg, Notify, Attach, Credit) alias the state's scratch and are valid only
// until the next decode through the same state. Receivers keep what they
// need by value — exactly the discipline the live node and server already
// follow — and must not stash the pointers.
type DecodeState struct {
	ids   map[string]types.ProcID
	views map[string]types.View

	msg     types.WireMsg
	notify  membership.Notification
	attach  Attach
	credit  Credit
	handoff Handoff
}

// Bounds on the intern tables: identifiers are per-process names (small,
// stable set), views repeat until the next reconfiguration. When a table
// fills — an adversary minting unique names, or an extremely churny group —
// it is reset rather than grown without bound.
const (
	maxInternedIDs   = 4096
	maxInternedViews = 64
)

// NewDecodeState returns an empty per-stream decode state.
func NewDecodeState() *DecodeState {
	return &DecodeState{
		ids:   make(map[string]types.ProcID),
		views: make(map[string]types.View),
	}
}

// internID returns the interned ProcID for the raw bytes, allocating only on
// the first sighting of a given identifier.
func (st *DecodeState) internID(b []byte) types.ProcID {
	if p, ok := st.ids[string(b)]; ok {
		return p
	}
	if len(st.ids) >= maxInternedIDs {
		st.ids = make(map[string]types.ProcID)
	}
	p := types.ProcID(b)
	st.ids[string(p)] = p
	return p
}

// internView returns the cached decode of an encoded view, keyed by its raw
// bytes. Steady-state traffic repeats the same view on every data frame, so
// after the first decode the per-member maps and identifier strings are
// shared instead of reallocated. Cached views are shared structures: callers
// must treat them as immutable (the core endpoint already ignores or clones
// every view it keeps).
func (st *DecodeState) internView(raw []byte, decode func() (types.View, error)) (types.View, error) {
	if v, ok := st.views[string(raw)]; ok {
		return v, nil
	}
	v, err := decode()
	if err != nil {
		return v, err
	}
	if len(st.views) >= maxInternedViews {
		st.views = make(map[string]types.View)
	}
	st.views[string(append([]byte(nil), raw...))] = v
	return v, nil
}

// skipView advances past one encoded view without decoding it, returning the
// number of bytes it occupies, so the view-intern cache can key on the raw
// encoding before deciding whether a decode is needed at all.
func skipView(b []byte) (int, error) {
	r := reader{b: b}
	if _, err := r.take(8); err != nil { // view id
		return 0, err
	}
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	for i := uint32(0); i < n; i++ {
		l, err := r.u16()
		if err != nil {
			return 0, err
		}
		if _, err := r.take(int(l) + 8); err != nil { // member id + start-change id
			return 0, err
		}
	}
	return len(b) - len(r.b), nil
}

// viewCached decodes one view through the reader's intern cache (plain
// decode when the reader has no state attached).
func (r *reader) viewCached() (types.View, error) {
	if r.st == nil {
		return r.view()
	}
	n, err := skipView(r.b)
	if err != nil {
		return types.View{}, err
	}
	raw := r.b[:n]
	v, err := r.st.internView(raw, func() (types.View, error) {
		vr := reader{b: raw, st: r.st}
		return vr.view()
	})
	if err != nil {
		return types.View{}, err
	}
	r.b = r.b[n:]
	return v, nil
}

// unmarshalFrameInto decodes one frame from b into f. With a DecodeState
// attached the Frame's pointer fields are the state's reusable scratch
// (borrowed until the next decode); with alias set, byte-slice fields of the
// frame (application payloads) alias b instead of being copied — the caller
// owns b's lifetime and must keep it alive for as long as the payload is in
// use.
func unmarshalFrameInto(b []byte, f *Frame, st *DecodeState, alias bool) error {
	r := reader{b: b, st: st, alias: alias}
	from, err := r.id()
	if err != nil {
		return err
	}
	*f = Frame{From: from}
	tag, err := r.u8()
	if err != nil {
		return err
	}
	switch tag {
	case frameHandshake:
		return nil
	case frameMsg:
		m := &types.WireMsg{}
		if st != nil {
			m = &st.msg
		}
		if err := readMsgInto(&r, m); err != nil {
			return err
		}
		f.Msg = m
		return nil
	case frameNotify:
		ntf := &membership.Notification{}
		if st != nil {
			ntf = &st.notify
		}
		if err := readNotifyInto(&r, ntf); err != nil {
			return err
		}
		f.Notify = ntf
		return nil
	case frameAttach:
		a := &Attach{}
		if st != nil {
			a = &st.attach
		}
		if err := readAttachInto(&r, a); err != nil {
			return err
		}
		f.Attach = a
		return nil
	case frameCredit:
		grant, err := r.u64()
		if err != nil {
			return err
		}
		c := &Credit{}
		if st != nil {
			c = &st.credit
		}
		c.Grant = grant
		f.Credit = c
		return nil
	case frameHandoff:
		h := &Handoff{}
		if st != nil {
			h = &st.handoff
		}
		if err := readHandoffInto(&r, h); err != nil {
			return err
		}
		f.Handoff = h
		return nil
	default:
		return errUnknownFrameTag(tag)
	}
}
