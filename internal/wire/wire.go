// Package wire is a compact, deterministic binary codec for the service's
// wire messages — the hand-rolled alternative to encoding/gob for the live
// TCP transport. Unlike gob it needs no per-connection type negotiation, is
// reflection-free on the hot path, and its output sizes track the abstract
// size model of types.WireMsg.Size.
//
// Layout conventions: integers are big-endian fixed width; strings and
// byte slices are length-prefixed (uint16 for identifiers, uint32 for
// payloads); sets, maps, and lists are count-prefixed and encoded in sorted
// order so equal values always yield identical bytes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"

	"vsgm/internal/types"
)

// ErrTruncated reports an input shorter than its own framing claims.
var ErrTruncated = errors.New("wire: truncated input")

// buffer is an append-only encoder.
type buffer struct {
	b []byte
}

func (w *buffer) u8(v uint8) { w.b = append(w.b, v) }

// bool encodes v as one byte. A branch, not a map literal: this runs once
// per bool field on the marshal hot path, and a map composite would allocate
// on every call.
func (w *buffer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *buffer) u16(v uint16) { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *buffer) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *buffer) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }

func (w *buffer) id(p types.ProcID) error {
	if len(p) > math.MaxUint16 {
		return fmt.Errorf("wire: identifier %q too long", p)
	}
	w.u16(uint16(len(p)))
	w.b = append(w.b, p...)
	return nil
}

func (w *buffer) bytes(b []byte) error {
	if len(b) > math.MaxUint32 {
		return errors.New("wire: payload too large")
	}
	w.u32(uint32(len(b)))
	w.b = append(w.b, b...)
	return nil
}

// reader is the matching decoder. A reader with a DecodeState attached
// interns repeated identifiers and views; with alias set, byte-slice fields
// are returned as subslices of the input instead of copies (the caller then
// owns the input's lifetime).
type reader struct {
	b     []byte
	st    *DecodeState
	alias bool
}

func (r *reader) take(n int) ([]byte, error) {
	if len(r.b) < n {
		return nil, ErrTruncated
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out, nil
}

func (r *reader) u8() (uint8, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) bool() (bool, error) {
	v, err := r.u8()
	return v != 0, err
}

func (r *reader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (r *reader) id() (types.ProcID, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	if r.st != nil {
		return r.st.internID(b), nil
	}
	return types.ProcID(b), nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	b, err := r.take(int(n))
	if err != nil {
		return nil, err
	}
	if r.alias {
		return b[:len(b):len(b)], nil
	}
	return append([]byte(nil), b...), nil
}

// hint clamps a wire-declared element count to what the remaining input
// could possibly hold (elemSize is the minimum encoded size of one element),
// so a corrupt count cannot force a huge up-front map allocation.
func (r *reader) hint(n uint32, elemSize int) int {
	most := len(r.b)/elemSize + 1
	if int(n) < most {
		return int(n)
	}
	return most
}

// ---- composite encoders ----

func (w *buffer) view(v types.View) error {
	w.u64(uint64(v.ID))
	members := v.Members.Sorted()
	w.u32(uint32(len(members)))
	for _, p := range members {
		if err := w.id(p); err != nil {
			return err
		}
		w.u64(uint64(v.StartID[p]))
	}
	return nil
}

func (r *reader) view() (types.View, error) {
	id, err := r.u64()
	if err != nil {
		return types.View{}, err
	}
	n, err := r.u32()
	if err != nil {
		return types.View{}, err
	}
	members := types.NewProcSet()
	startID := make(map[types.ProcID]types.StartChangeID, r.hint(n, 10))
	for i := uint32(0); i < n; i++ {
		p, err := r.id()
		if err != nil {
			return types.View{}, err
		}
		cid, err := r.u64()
		if err != nil {
			return types.View{}, err
		}
		members.Add(p)
		startID[p] = types.StartChangeID(cid)
	}
	return types.NewView(types.ViewID(id), members, startID), nil
}

func (w *buffer) cut(c types.Cut) error {
	procs := make([]types.ProcID, 0, len(c))
	for p := range c {
		procs = append(procs, p)
	}
	slices.Sort(procs)
	w.u32(uint32(len(procs)))
	for _, p := range procs {
		if err := w.id(p); err != nil {
			return err
		}
		w.u64(uint64(c[p]))
	}
	return nil
}

func (r *reader) cut() (types.Cut, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	c := make(types.Cut, r.hint(n, 10))
	for i := uint32(0); i < n; i++ {
		p, err := r.id()
		if err != nil {
			return nil, err
		}
		v, err := r.u64()
		if err != nil {
			return nil, err
		}
		c[p] = int(v)
	}
	return c, nil
}

func (w *buffer) procSet(s types.ProcSet) error {
	members := s.Sorted()
	w.u32(uint32(len(members)))
	for _, p := range members {
		if err := w.id(p); err != nil {
			return err
		}
	}
	return nil
}

func (r *reader) procSet() (types.ProcSet, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	s := types.NewProcSet()
	for i := uint32(0); i < n; i++ {
		p, err := r.id()
		if err != nil {
			return nil, err
		}
		s.Add(p)
	}
	return s, nil
}

func (w *buffer) appMsg(m types.AppMsg) error {
	w.u64(uint64(m.ID))
	return w.bytes(m.Payload)
}

func (r *reader) appMsg() (types.AppMsg, error) {
	id, err := r.u64()
	if err != nil {
		return types.AppMsg{}, err
	}
	payload, err := r.bytes()
	if err != nil {
		return types.AppMsg{}, err
	}
	return types.AppMsg{ID: int64(id), Payload: payload}, nil
}

func (w *buffer) syncEntry(e types.SyncEntry) error {
	if err := w.id(e.From); err != nil {
		return err
	}
	w.u64(uint64(e.CID))
	w.bool(e.Small)
	if err := w.view(e.View); err != nil {
		return err
	}
	return w.cut(e.Cut)
}

func (r *reader) syncEntry() (types.SyncEntry, error) {
	from, err := r.id()
	if err != nil {
		return types.SyncEntry{}, err
	}
	cid, err := r.u64()
	if err != nil {
		return types.SyncEntry{}, err
	}
	small, err := r.bool()
	if err != nil {
		return types.SyncEntry{}, err
	}
	v, err := r.view()
	if err != nil {
		return types.SyncEntry{}, err
	}
	cut, err := r.cut()
	if err != nil {
		return types.SyncEntry{}, err
	}
	return types.SyncEntry{From: from, CID: types.StartChangeID(cid), Small: small, View: v, Cut: cut}, nil
}

// MarshalMsg encodes a wire message.
func MarshalMsg(m types.WireMsg) ([]byte, error) {
	w := &buffer{}
	if err := appendMsg(w, m); err != nil {
		return nil, err
	}
	return w.b, nil
}

func appendMsg(w *buffer, m types.WireMsg) error {
	w.u8(uint8(m.Kind))
	switch m.Kind {
	case types.KindView:
		return w.view(m.View)
	case types.KindApp:
		if err := w.appMsg(m.App); err != nil {
			return err
		}
		if err := w.view(m.HistView); err != nil {
			return err
		}
		w.u64(uint64(m.HistIndex))
		return nil
	case types.KindFwd:
		if err := w.appMsg(m.App); err != nil {
			return err
		}
		if err := w.id(m.Origin); err != nil {
			return err
		}
		if err := w.view(m.View); err != nil {
			return err
		}
		w.u64(uint64(m.Index))
		return nil
	case types.KindSync:
		w.u64(uint64(m.CID))
		w.u64(m.Trace)
		w.bool(m.Small)
		w.bool(m.ElideView)
		w.bool(m.Probe)
		if err := w.view(m.View); err != nil {
			return err
		}
		return w.cut(m.Cut)
	case types.KindAck:
		return w.cut(m.Cut)
	case types.KindHeartbeat:
		// The sender's reachability bitmap (nil encodes as an empty set);
		// receivers feed it to the detector's gray-failure reconciliation.
		return w.procSet(m.Reach)
	case types.KindPropose:
		return w.view(m.View)
	case types.KindMembProposal:
		if m.MembProp == nil {
			return errors.New("wire: membership proposal without payload")
		}
		w.u64(uint64(m.MembProp.Attempt))
		w.u64(uint64(m.MembProp.MinVid))
		w.u64(m.MembProp.Trace)
		if err := w.procSet(m.MembProp.Servers); err != nil {
			return err
		}
		clients := make([]types.ProcID, 0, len(m.MembProp.Clients))
		for p := range m.MembProp.Clients {
			clients = append(clients, p)
		}
		slices.Sort(clients)
		w.u32(uint32(len(clients)))
		for _, p := range clients {
			if err := w.id(p); err != nil {
				return err
			}
			w.u64(uint64(m.MembProp.Clients[p]))
		}
		epochs := make([]types.ProcID, 0, len(m.MembProp.Epochs))
		for p := range m.MembProp.Epochs {
			epochs = append(epochs, p)
		}
		slices.Sort(epochs)
		w.u32(uint32(len(epochs)))
		for _, p := range epochs {
			if err := w.id(p); err != nil {
				return err
			}
			w.u64(uint64(m.MembProp.Epochs[p]))
		}
		return nil
	case types.KindSyncBundle:
		w.u32(uint32(len(m.Bundle)))
		for _, e := range m.Bundle {
			if err := w.syncEntry(e); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("wire: unknown message kind %d", int(m.Kind))
	}
}

// UnmarshalMsg decodes a wire message, returning the remaining bytes.
func UnmarshalMsg(b []byte) (types.WireMsg, []byte, error) {
	r := &reader{b: b}
	m, err := readMsg(r)
	if err != nil {
		return types.WireMsg{}, nil, err
	}
	return m, r.b, nil
}

func readMsg(r *reader) (types.WireMsg, error) {
	var m types.WireMsg
	err := readMsgInto(r, &m)
	return m, err
}

// readMsgInto decodes one message into m, which is fully overwritten — the
// scratch-reuse entry point for the zero-copy receive path. The KindApp
// history view goes through the reader's view-intern cache (when one is
// attached): the receive side of the core endpoint never reads HistView (it
// delivers against its own installed view), so in steady state the one
// structure that would otherwise dominate per-frame allocation decodes to a
// cache hit.
func readMsgInto(r *reader, m *types.WireMsg) error {
	kind, err := r.u8()
	if err != nil {
		return err
	}
	*m = types.WireMsg{Kind: types.MsgKind(kind)}
	switch m.Kind {
	case types.KindView:
		m.View, err = r.view()
		return err
	case types.KindApp:
		if m.App, err = r.appMsg(); err != nil {
			return err
		}
		if m.HistView, err = r.viewCached(); err != nil {
			return err
		}
		idx, err := r.u64()
		m.HistIndex = int(idx)
		return err
	case types.KindFwd:
		if m.App, err = r.appMsg(); err != nil {
			return err
		}
		if m.Origin, err = r.id(); err != nil {
			return err
		}
		if m.View, err = r.view(); err != nil {
			return err
		}
		idx, err := r.u64()
		m.Index = int(idx)
		return err
	case types.KindSync:
		cid, err := r.u64()
		if err != nil {
			return err
		}
		m.CID = types.StartChangeID(cid)
		if m.Trace, err = r.u64(); err != nil {
			return err
		}
		if m.Small, err = r.bool(); err != nil {
			return err
		}
		if m.ElideView, err = r.bool(); err != nil {
			return err
		}
		if m.Probe, err = r.bool(); err != nil {
			return err
		}
		if m.View, err = r.view(); err != nil {
			return err
		}
		m.Cut, err = r.cut()
		return err
	case types.KindAck:
		m.Cut, err = r.cut()
		return err
	case types.KindHeartbeat:
		var reach types.ProcSet
		if reach, err = r.procSet(); err != nil {
			return err
		}
		// An empty bitmap decodes to nil, so a bitmap-less heartbeat
		// round-trips unchanged.
		if reach.Len() > 0 {
			m.Reach = reach
		}
		return nil
	case types.KindPropose:
		m.View, err = r.view()
		return err
	case types.KindMembProposal:
		prop := &types.MembProposal{Clients: make(map[types.ProcID]types.StartChangeID)}
		attempt, err := r.u64()
		if err != nil {
			return err
		}
		prop.Attempt = int64(attempt)
		minVid, err := r.u64()
		if err != nil {
			return err
		}
		prop.MinVid = types.ViewID(minVid)
		if prop.Trace, err = r.u64(); err != nil {
			return err
		}
		if prop.Servers, err = r.procSet(); err != nil {
			return err
		}
		n, err := r.u32()
		if err != nil {
			return err
		}
		for i := uint32(0); i < n; i++ {
			p, err := r.id()
			if err != nil {
				return err
			}
			cid, err := r.u64()
			if err != nil {
				return err
			}
			prop.Clients[p] = types.StartChangeID(cid)
		}
		ne, err := r.u32()
		if err != nil {
			return err
		}
		if ne > 0 {
			prop.Epochs = make(map[types.ProcID]int64, ne)
		}
		for i := uint32(0); i < ne; i++ {
			p, err := r.id()
			if err != nil {
				return err
			}
			e, err := r.u64()
			if err != nil {
				return err
			}
			prop.Epochs[p] = int64(e)
		}
		m.MembProp = prop
		return nil
	case types.KindSyncBundle:
		n, err := r.u32()
		if err != nil {
			return err
		}
		for i := uint32(0); i < n; i++ {
			e, err := r.syncEntry()
			if err != nil {
				return err
			}
			m.Bundle = append(m.Bundle, e)
		}
		return nil
	default:
		return fmt.Errorf("wire: unknown message kind %d", kind)
	}
}
