package wire

import (
	"bytes"
	"testing"

	"vsgm/internal/membership"
	"vsgm/internal/types"
)

// frameCorpus returns valid stream encodings (header + body) of every frame
// shape, used to seed the fuzzer close to the interesting decode paths.
func frameCorpus(t testing.TB) [][]byte {
	t.Helper()
	v := types.NewView(3, types.NewProcSet("a", "b"),
		map[types.ProcID]types.StartChangeID{"a": 1, "b": 2})
	msg := func(m types.WireMsg) Frame { return Frame{From: "p", Msg: &m} }
	frames := []Frame{
		{From: "p"},
		msg(types.WireMsg{Kind: types.KindView, View: v}),
		msg(types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: 7, Payload: []byte("x")}, HistView: v, HistIndex: 2}),
		msg(types.WireMsg{Kind: types.KindFwd, App: types.AppMsg{ID: 8}, Origin: "a", View: v, Index: 3}),
		msg(types.WireMsg{Kind: types.KindSync, CID: 4, View: v, Cut: types.Cut{"a": 1}}),
		msg(types.WireMsg{Kind: types.KindAck, Cut: types.Cut{"a": 9}}),
		msg(types.WireMsg{Kind: types.KindHeartbeat}),
		msg(types.WireMsg{Kind: types.KindMembProposal, MembProp: &types.MembProposal{
			Attempt: 2, Servers: types.NewProcSet("s0"), MinVid: 4,
			Clients: map[types.ProcID]types.StartChangeID{"c": 3},
			Epochs:  map[types.ProcID]int64{"c": 2},
		}}),
		msg(types.WireMsg{Kind: types.KindSyncBundle, Bundle: []types.SyncEntry{
			{From: "a", CID: 1, View: v, Cut: types.Cut{"a": 1}},
		}}),
		{From: "srv", Notify: &membership.Notification{
			Kind:        membership.NotifyStartChange,
			StartChange: types.StartChange{ID: 9, Set: types.NewProcSet("a", "b")},
		}},
		{From: "srv", Notify: &membership.Notification{Kind: membership.NotifyView, View: v}},
		{From: "c", Attach: &Attach{Kind: AttachRequest, Client: "c", Epoch: 2}},
		{From: "srv", Attach: &Attach{Kind: AttachAck, Client: "c", Epoch: 2, CID: 1 << 33, Vid: 7}},
		{From: "c", Attach: &Attach{Kind: AttachDetach, Client: "c", Epoch: 1}},
		{From: "c", Attach: &Attach{Kind: AttachSuspect, Client: "d"}},
		{From: "c", Credit: &Credit{Grant: 1 << 40}},
	}
	var out [][]byte
	for _, fr := range frames {
		var buf bytes.Buffer
		if err := NewEncoder(&buf).Encode(fr); err != nil {
			t.Fatalf("seed encode: %v", err)
		}
		out = append(out, buf.Bytes())
	}
	return out
}

// FuzzDecodeFrame feeds arbitrary bytes through the stream decoder:
// malformed length prefixes, corrupt tags, and truncated payloads must all
// surface as errors — never a panic, hang, or unbounded allocation. Frames
// that do decode must re-marshal (the decoder never fabricates a value the
// encoder cannot represent).
func FuzzDecodeFrame(f *testing.F) {
	for _, seed := range frameCorpus(f) {
		f.Add(seed)
		// Truncations and a corrupt length prefix of each valid encoding.
		f.Add(seed[:len(seed)/2])
		mangled := append([]byte{0xff, 0xff, 0xff, 0xff}, seed[4:]...)
		f.Add(mangled)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			var fr Frame
			if err := dec.Decode(&fr); err != nil {
				return
			}
			if _, err := MarshalFrame(fr); err != nil {
				t.Fatalf("decoded frame does not re-marshal: %v (%+v)", err, fr)
			}
		}
	})
}

// FuzzDecodeCreditFrame narrows the fuzzer onto the credit frame codec:
// seeds are credit encodings (plus truncations and tag corruptions), and any
// input that decodes into a credit frame must round-trip its grant exactly —
// flow-control correctness rests on grants surviving the wire unchanged.
func FuzzDecodeCreditFrame(f *testing.F) {
	for _, grant := range []uint64{0, 1, 1 << 16, 1<<64 - 1} {
		var buf bytes.Buffer
		if err := NewEncoder(&buf).Encode(Frame{From: "p", Credit: &Credit{Grant: grant}}); err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		seed := buf.Bytes()
		f.Add(seed)
		f.Add(seed[:len(seed)-1])
		if len(seed) > 5 {
			corrupt := append([]byte(nil), seed...)
			corrupt[5] ^= 0xff // somewhere inside the body: From length or tag
			f.Add(corrupt)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			var fr Frame
			if err := dec.Decode(&fr); err != nil {
				return
			}
			if fr.Credit == nil {
				continue
			}
			enc, err := MarshalFrame(fr)
			if err != nil {
				t.Fatalf("decoded credit frame does not re-marshal: %v (%+v)", err, fr)
			}
			back, err := UnmarshalFrame(enc)
			if err != nil || back.Credit == nil || back.Credit.Grant != fr.Credit.Grant {
				t.Fatalf("credit grant did not round-trip: got %+v want %+v (err %v)", back.Credit, fr.Credit, err)
			}
		}
	})
}

// FuzzUnmarshalFrame exercises the body codec directly (no length prefix),
// hitting UnmarshalFrame's internal readers with raw bytes.
func FuzzUnmarshalFrame(f *testing.F) {
	for _, seed := range frameCorpus(f) {
		if len(seed) > 4 {
			f.Add(seed[4:])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := UnmarshalFrame(data)
		if err != nil {
			return
		}
		if _, err := MarshalFrame(fr); err != nil {
			t.Fatalf("decoded frame does not re-marshal: %v (%+v)", err, fr)
		}
	})
}
