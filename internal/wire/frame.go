package wire

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"vsgm/internal/membership"
	"vsgm/internal/types"
)

// Frame is the live transport's unit: a sender identifier plus either a
// wire message or a membership notification (a bare frame with neither is
// the connection handshake).
type Frame struct {
	From   types.ProcID
	Msg    *types.WireMsg
	Notify *membership.Notification
}

const (
	frameHandshake uint8 = 0
	frameMsg       uint8 = 1
	frameNotify    uint8 = 2

	notifyStartChange uint8 = 1
	notifyView        uint8 = 2

	// maxFrameSize bounds a frame on the wire (16 MiB), protecting readers
	// from hostile or corrupt length prefixes.
	maxFrameSize = 16 << 20
)

// ErrFrameTooLarge reports a frame exceeding the transport bound.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size bound")

// MarshalFrame encodes a frame.
func MarshalFrame(f Frame) ([]byte, error) {
	w := &buffer{}
	if err := w.id(f.From); err != nil {
		return nil, err
	}
	switch {
	case f.Msg != nil:
		w.u8(frameMsg)
		if err := appendMsg(w, *f.Msg); err != nil {
			return nil, err
		}
	case f.Notify != nil:
		w.u8(frameNotify)
		switch f.Notify.Kind {
		case membership.NotifyStartChange:
			w.u8(notifyStartChange)
			w.u64(uint64(f.Notify.StartChange.ID))
			if err := w.procSet(f.Notify.StartChange.Set); err != nil {
				return nil, err
			}
		case membership.NotifyView:
			w.u8(notifyView)
			if err := w.view(f.Notify.View); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("wire: unknown notification kind %d", int(f.Notify.Kind))
		}
	default:
		w.u8(frameHandshake)
	}
	return w.b, nil
}

// UnmarshalFrame decodes a frame.
func UnmarshalFrame(b []byte) (Frame, error) {
	r := &reader{b: b}
	from, err := r.id()
	if err != nil {
		return Frame{}, err
	}
	f := Frame{From: from}
	tag, err := r.u8()
	if err != nil {
		return Frame{}, err
	}
	switch tag {
	case frameHandshake:
		return f, nil
	case frameMsg:
		m, err := readMsg(r)
		if err != nil {
			return Frame{}, err
		}
		f.Msg = &m
		return f, nil
	case frameNotify:
		kind, err := r.u8()
		if err != nil {
			return Frame{}, err
		}
		switch kind {
		case notifyStartChange:
			cid, err := r.u64()
			if err != nil {
				return Frame{}, err
			}
			set, err := r.procSet()
			if err != nil {
				return Frame{}, err
			}
			f.Notify = &membership.Notification{
				Kind:        membership.NotifyStartChange,
				StartChange: types.StartChange{ID: types.StartChangeID(cid), Set: set},
			}
			return f, nil
		case notifyView:
			v, err := r.view()
			if err != nil {
				return Frame{}, err
			}
			f.Notify = &membership.Notification{Kind: membership.NotifyView, View: v}
			return f, nil
		default:
			return Frame{}, fmt.Errorf("wire: unknown notification tag %d", kind)
		}
	default:
		return Frame{}, fmt.Errorf("wire: unknown frame tag %d", tag)
	}
}

// WriteDeadliner is the subset of net.Conn needed to arm write deadlines.
type WriteDeadliner interface {
	SetWriteDeadline(t time.Time) error
}

// ReadDeadliner is the subset of net.Conn needed to arm read deadlines.
type ReadDeadliner interface {
	SetReadDeadline(t time.Time) error
}

// Encoder writes length-prefixed frames to a stream.
type Encoder struct {
	w *bufio.Writer

	dl        WriteDeadliner
	dlTimeout time.Duration
}

// NewEncoder wraps w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w)}
}

// ArmWriteDeadline makes every subsequent Encode arm a write deadline of
// timeout on c before writing, so a peer that stops draining its socket can
// stall a writer for at most timeout instead of forever. A non-positive
// timeout disarms.
func (e *Encoder) ArmWriteDeadline(c WriteDeadliner, timeout time.Duration) {
	e.dl, e.dlTimeout = c, timeout
}

// Encode writes one frame and flushes.
func (e *Encoder) Encode(f Frame) error {
	b, err := MarshalFrame(f)
	if err != nil {
		return err
	}
	if e.dl != nil && e.dlTimeout > 0 {
		if err := e.dl.SetWriteDeadline(time.Now().Add(e.dlTimeout)); err != nil {
			return err
		}
	}
	if len(b) > maxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	if len(b) > math.MaxUint32 {
		return ErrFrameTooLarge
	}
	hdr[0] = byte(len(b) >> 24)
	hdr[1] = byte(len(b) >> 16)
	hdr[2] = byte(len(b) >> 8)
	hdr[3] = byte(len(b))
	if _, err := e.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := e.w.Write(b); err != nil {
		return err
	}
	return e.w.Flush()
}

// Decoder reads length-prefixed frames from a stream.
type Decoder struct {
	r   *bufio.Reader
	buf bytes.Buffer

	dl        ReadDeadliner
	dlTimeout time.Duration
}

// NewDecoder wraps r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// ArmReadDeadline makes every subsequent Decode arm a read deadline of
// timeout on c before blocking, turning a silent peer into a timeout error
// after at most timeout of idleness. A non-positive timeout disarms.
func (d *Decoder) ArmReadDeadline(c ReadDeadliner, timeout time.Duration) {
	d.dl, d.dlTimeout = c, timeout
}

// initialBodyAlloc caps the up-front buffer reservation per frame; larger
// bodies grow as their bytes actually arrive, so a corrupt or hostile length
// prefix cannot force a large allocation on its own.
const initialBodyAlloc = 64 << 10

// Decode reads one frame.
func (d *Decoder) Decode(f *Frame) error {
	if d.dl != nil && d.dlTimeout > 0 {
		if err := d.dl.SetReadDeadline(time.Now().Add(d.dlTimeout)); err != nil {
			return err
		}
	}
	var hdr [4]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		return err
	}
	n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n > maxFrameSize {
		return ErrFrameTooLarge
	}
	d.buf.Reset()
	d.buf.Grow(min(n, initialBodyAlloc))
	if _, err := io.CopyN(&d.buf, d.r, int64(n)); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	got, err := UnmarshalFrame(d.buf.Bytes())
	if err != nil {
		return err
	}
	*f = got
	return nil
}
