package wire

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"vsgm/internal/membership"
	"vsgm/internal/types"
	"vsgm/internal/wire/pool"
)

// Frame is the live transport's unit: a sender identifier plus either a
// wire message, a membership notification, an attach-protocol frame, or a
// flow-control credit grant (a bare frame with none of them is the
// connection handshake).
type Frame struct {
	From    types.ProcID
	Msg     *types.WireMsg
	Notify  *membership.Notification
	Attach  *Attach
	Credit  *Credit
	Handoff *Handoff
}

// Handoff is one chunk of a key-range state transfer between shard groups
// during a reshard: the source streams the migrating range as a sequence of
// chunks, sealed by a final frame with Last set (the handoff marker). Data
// is opaque to the transport (the shard layer encodes its install commands
// into it). Handoff frames are application data: they ride the credit-gated
// data path, so a bulk state transfer cannot starve the control plane or
// overrun a slow destination.
type Handoff struct {
	// Reshard is the proposal id this transfer belongs to.
	Reshard string
	// Shard is the destination shard id.
	Shard int64
	// Seq numbers chunks within the transfer (0-based, contiguous).
	Seq uint32
	// Last marks the final chunk — the handoff marker the destination's
	// cutover view is gated on.
	Last bool
	// Data is the opaque chunk payload.
	Data []byte
}

// Credit is one end-to-end flow-control grant: the sender of the frame
// permits its peer to have transmitted up to Grant application data frames
// toward it, cumulatively since the pair first spoke. Grants are monotone
// (receivers take the max), so duplicated, reordered, or re-sent credit
// frames are harmless — exactly the robustness a frame that rides a
// reconnecting transport needs.
type Credit struct {
	Grant uint64
}

// AttachKind discriminates the in-band client attach protocol frames.
type AttachKind uint8

const (
	// AttachRequest registers (or keeps alive) a client at its home server
	// under the given epoch.
	AttachRequest AttachKind = 1
	// AttachAck is the server's reply: the epoch the registration is held
	// under and the recorded cid/view-id, so a recovered client resumes
	// under its original identity.
	AttachAck AttachKind = 2
	// AttachDetach rescinds a registration (client is failing over or
	// leaving). The server ignores it if its registration epoch is newer
	// than the frame's, so late detaches cannot evict a fresh attach.
	AttachDetach AttachKind = 3
	// AttachSuspect is an overload complaint: the sender reports that
	// Client has held the sender's credit window exhausted past the grace
	// period. The receiving server evicts (and temporarily bans) a client
	// laggard, or feeds a server laggard to its failure detector, so
	// overload degrades to a smaller live view instead of a stalled group.
	AttachSuspect AttachKind = 4
)

// Attach is one frame of the in-band attach protocol between a client node
// and its home server. Client identity travels as Frame.From; Client echoes
// the subject explicitly so acks stay self-describing.
type Attach struct {
	Kind   AttachKind
	Client types.ProcID
	Epoch  int64
	CID    types.StartChangeID
	Vid    types.ViewID
}

const (
	frameHandshake uint8 = 0
	frameMsg       uint8 = 1
	frameNotify    uint8 = 2
	frameAttach    uint8 = 3
	frameCredit    uint8 = 4
	frameHandoff   uint8 = 5

	notifyStartChange uint8 = 1
	notifyView        uint8 = 2

	// maxFrameSize bounds a frame on the wire (16 MiB), protecting readers
	// from hostile or corrupt length prefixes.
	maxFrameSize = 16 << 20
)

// MaxFrameSize is the transport's frame size bound, exported for readers
// that parse the length-prefixed stream themselves (the live reactor).
const MaxFrameSize = maxFrameSize

// ErrFrameTooLarge reports a frame exceeding the transport bound.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size bound")

// MarshalFrame encodes a frame into a fresh buffer.
func MarshalFrame(f Frame) ([]byte, error) {
	return AppendFrame(nil, f)
}

// AppendFrame encodes a frame onto dst and returns the extended slice. It is
// the allocation-frugal entry point: callers that reuse dst (or obtain one
// through EncodeFrame's pool) marshal without per-call buffer allocations.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	w := buffer{b: dst}
	if err := w.id(f.From); err != nil {
		return nil, err
	}
	switch {
	case f.Msg != nil:
		w.u8(frameMsg)
		if err := appendMsg(&w, *f.Msg); err != nil {
			return nil, err
		}
	case f.Notify != nil:
		w.u8(frameNotify)
		switch f.Notify.Kind {
		case membership.NotifyStartChange:
			w.u8(notifyStartChange)
			w.u64(uint64(f.Notify.StartChange.ID))
			if err := w.procSet(f.Notify.StartChange.Set); err != nil {
				return nil, err
			}
			w.u64(f.Notify.Trace)
		case membership.NotifyView:
			w.u8(notifyView)
			if err := w.view(f.Notify.View); err != nil {
				return nil, err
			}
			w.u64(f.Notify.Trace)
		default:
			return nil, fmt.Errorf("wire: unknown notification kind %d", int(f.Notify.Kind))
		}
	case f.Attach != nil:
		w.u8(frameAttach)
		switch f.Attach.Kind {
		case AttachRequest, AttachAck, AttachDetach, AttachSuspect:
		default:
			return nil, fmt.Errorf("wire: unknown attach kind %d", int(f.Attach.Kind))
		}
		w.u8(uint8(f.Attach.Kind))
		if err := w.id(f.Attach.Client); err != nil {
			return nil, err
		}
		w.u64(uint64(f.Attach.Epoch))
		w.u64(uint64(f.Attach.CID))
		w.u64(uint64(f.Attach.Vid))
	case f.Credit != nil:
		w.u8(frameCredit)
		w.u64(f.Credit.Grant)
	case f.Handoff != nil:
		w.u8(frameHandoff)
		if err := w.bytes([]byte(f.Handoff.Reshard)); err != nil {
			return nil, err
		}
		w.u64(uint64(f.Handoff.Shard))
		w.u32(f.Handoff.Seq)
		w.bool(f.Handoff.Last)
		if err := w.bytes(f.Handoff.Data); err != nil {
			return nil, err
		}
	default:
		w.u8(frameHandshake)
	}
	return w.b, nil
}

// UnmarshalFrame decodes a frame into fully owned storage.
func UnmarshalFrame(b []byte) (Frame, error) {
	var f Frame
	if err := unmarshalFrameInto(b, &f, nil, false); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// UnmarshalFrameBorrow decodes a frame body zero-copy: byte-slice fields of
// f alias b, and with st non-nil the pointer fields are st's reusable
// scratch. The caller owns b's lifetime and must treat f as invalid after
// the next decode through the same state. This is the batch-receive entry
// point for readers (the live reactor) that assemble frames from the stream
// themselves instead of going through Decoder.
func UnmarshalFrameBorrow(b []byte, f *Frame, st *DecodeState) error {
	return unmarshalFrameInto(b, f, st, true)
}

func errUnknownFrameTag(tag uint8) error {
	return fmt.Errorf("wire: unknown frame tag %d", tag)
}

// readNotifyInto decodes one notification frame body into ntf (fully
// overwritten).
func readNotifyInto(r *reader, ntf *membership.Notification) error {
	kind, err := r.u8()
	if err != nil {
		return err
	}
	switch kind {
	case notifyStartChange:
		cid, err := r.u64()
		if err != nil {
			return err
		}
		set, err := r.procSet()
		if err != nil {
			return err
		}
		trace, err := r.u64()
		if err != nil {
			return err
		}
		*ntf = membership.Notification{
			Kind:        membership.NotifyStartChange,
			StartChange: types.StartChange{ID: types.StartChangeID(cid), Set: set, Trace: trace},
			Trace:       trace,
		}
		return nil
	case notifyView:
		v, err := r.view()
		if err != nil {
			return err
		}
		trace, err := r.u64()
		if err != nil {
			return err
		}
		*ntf = membership.Notification{Kind: membership.NotifyView, View: v, Trace: trace}
		return nil
	default:
		return fmt.Errorf("wire: unknown notification tag %d", kind)
	}
}

// readAttachInto decodes one attach frame body into a (fully overwritten).
func readAttachInto(r *reader, a *Attach) error {
	kind, err := r.u8()
	if err != nil {
		return err
	}
	switch AttachKind(kind) {
	case AttachRequest, AttachAck, AttachDetach, AttachSuspect:
	default:
		return fmt.Errorf("wire: unknown attach tag %d", kind)
	}
	client, err := r.id()
	if err != nil {
		return err
	}
	epoch, err := r.u64()
	if err != nil {
		return err
	}
	cid, err := r.u64()
	if err != nil {
		return err
	}
	vid, err := r.u64()
	if err != nil {
		return err
	}
	*a = Attach{
		Kind:   AttachKind(kind),
		Client: client,
		Epoch:  int64(epoch),
		CID:    types.StartChangeID(cid),
		Vid:    types.ViewID(vid),
	}
	return nil
}

// readHandoffInto decodes one handoff frame body into h (fully
// overwritten). With alias set, Data aliases the input buffer.
func readHandoffInto(r *reader, h *Handoff) error {
	id, err := r.bytes()
	if err != nil {
		return err
	}
	shard, err := r.u64()
	if err != nil {
		return err
	}
	seq, err := r.u32()
	if err != nil {
		return err
	}
	last, err := r.bool()
	if err != nil {
		return err
	}
	data, err := r.bytes()
	if err != nil {
		return err
	}
	*h = Handoff{
		Reshard: string(id),
		Shard:   int64(shard),
		Seq:     seq,
		Last:    last,
		Data:    data,
	}
	return nil
}

// FrameBuf is a pooled, reference-counted encoded frame. EncodeFrame returns
// one holding a single reference; a fan-out sender calls Retain once per
// additional consumer, and every consumer calls Release exactly once when it
// is done (after the frame was written, dropped, or evicted). The final
// Release returns the buffer to the pool, after which Bytes must no longer
// be read. This is what lets a multicast marshal once and share the encoded
// bytes across every destination queue without copies.
type FrameBuf struct {
	b     []byte
	class FrameClass
	refs  atomic.Int32
}

// FrameClass partitions encoded frames for the transport's queueing policy.
// Only application data is credit-gated and sheddable; every control-plane
// frame (views, sync, proposals, acks, notifications, attach, credit) is
// reliable — a bounded queue must never drop one. Heartbeats are control
// too, but a newer heartbeat supersedes a queued older one, so writers may
// coalesce them instead of letting them accumulate toward a dead peer.
type FrameClass uint8

const (
	// ClassControl frames are reliable: never shed, never credit-gated.
	ClassControl FrameClass = iota
	// ClassData frames (application multicasts) consume credit and are the
	// only frames a full queue may evict.
	ClassData
	// ClassHeartbeat frames are reliable but superseding: at most the
	// newest needs to be queued per link.
	ClassHeartbeat
)

// classify buckets a frame by its queueing policy.
func classify(f Frame) FrameClass {
	if f.Handoff != nil {
		// Bulk state transfer is data, not control: it must consume credit
		// and is sheddable (the resharder re-sends an unacknowledged chunk).
		return ClassData
	}
	if f.Msg == nil {
		return ClassControl
	}
	switch f.Msg.Kind {
	case types.KindApp:
		return ClassData
	case types.KindHeartbeat:
		return ClassHeartbeat
	default:
		return ClassControl
	}
}

// maxPooledFrame caps the capacity retained by the pool; occasional giant
// frames are released to the GC instead of pinning their backing arrays.
const maxPooledFrame = 64 << 10

var framePool = sync.Pool{New: func() any { return new(FrameBuf) }}

// EncodeFrame marshals f into a pooled buffer holding one reference. A
// frame exceeding the transport bound is rejected here, before it can enter
// any outbound queue, so writers never face an unsendable frame.
func EncodeFrame(f Frame) (*FrameBuf, error) {
	fb := framePool.Get().(*FrameBuf)
	b, err := AppendFrame(fb.b[:0], f)
	if err == nil && len(b) > maxFrameSize {
		err = ErrFrameTooLarge
	}
	if err != nil {
		framePool.Put(fb)
		return nil, err
	}
	fb.b = b
	fb.class = classify(f)
	fb.refs.Store(1)
	return fb, nil
}

// Bytes returns the encoded frame. Valid until the final Release.
func (fb *FrameBuf) Bytes() []byte { return fb.b }

// Class reports the frame's queueing class. Valid until the final Release.
func (fb *FrameBuf) Class() FrameClass { return fb.class }

// Retain adds n references.
func (fb *FrameBuf) Retain(n int32) { fb.refs.Add(n) }

// Release drops one reference, recycling the buffer on the last one.
func (fb *FrameBuf) Release() {
	switch n := fb.refs.Add(-1); {
	case n > 0:
	case n == 0:
		if cap(fb.b) > maxPooledFrame {
			fb.b = nil
		}
		framePool.Put(fb)
	default:
		panic("wire: FrameBuf over-released")
	}
}

// WriteDeadliner is the subset of net.Conn needed to arm write deadlines.
type WriteDeadliner interface {
	SetWriteDeadline(t time.Time) error
}

// ReadDeadliner is the subset of net.Conn needed to arm read deadlines.
type ReadDeadliner interface {
	SetReadDeadline(t time.Time) error
}

// Encoder writes length-prefixed frames to a stream.
type Encoder struct {
	w   *bufio.Writer
	hdr [4]byte // length-prefix scratch; a local would escape through bufio

	dl        WriteDeadliner
	dlTimeout time.Duration
}

// NewEncoder wraps w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w)}
}

// ArmWriteDeadline makes every subsequent Encode arm a write deadline of
// timeout on c before writing, so a peer that stops draining its socket can
// stall a writer for at most timeout instead of forever. A non-positive
// timeout disarms.
func (e *Encoder) ArmWriteDeadline(c WriteDeadliner, timeout time.Duration) {
	e.dl, e.dlTimeout = c, timeout
}

// arm sets the write deadline, if one is configured.
func (e *Encoder) arm() error {
	if e.dl != nil && e.dlTimeout > 0 {
		return e.dl.SetWriteDeadline(time.Now().Add(e.dlTimeout))
	}
	return nil
}

// writeFrame buffers one length-prefixed frame without flushing.
func (e *Encoder) writeFrame(b []byte) error {
	if len(b) > maxFrameSize || len(b) > math.MaxUint32 {
		return ErrFrameTooLarge
	}
	e.hdr[0] = byte(len(b) >> 24)
	e.hdr[1] = byte(len(b) >> 16)
	e.hdr[2] = byte(len(b) >> 8)
	e.hdr[3] = byte(len(b))
	if _, err := e.w.Write(e.hdr[:]); err != nil {
		return err
	}
	_, err := e.w.Write(b)
	return err
}

// Encode writes one frame and flushes. The marshal buffer comes from the
// frame pool, so steady-state encoding allocates nothing.
func (e *Encoder) Encode(f Frame) error {
	fb, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	defer fb.Release()
	if err := e.arm(); err != nil {
		return err
	}
	if err := e.writeFrame(fb.b); err != nil {
		return err
	}
	return e.w.Flush()
}

// EncodeBytes buffers one pre-encoded frame without flushing; pair with
// Flush (or use EncodeBatch) to put it on the wire.
func (e *Encoder) EncodeBytes(b []byte) error {
	if err := e.arm(); err != nil {
		return err
	}
	return e.writeFrame(b)
}

// Flush arms the write deadline and drains the buffered bytes to the
// underlying stream.
func (e *Encoder) Flush() error {
	if err := e.arm(); err != nil {
		return err
	}
	return e.w.Flush()
}

// EncodeBatch writes a run of pre-encoded frames coalesced into as few
// flushes as possible: frames accumulate in the write buffer and are flushed
// whenever maxBytes (<=0: no cap) of frame data is pending and once at the
// end. It returns how many leading frames are known flushed — on error a
// caller retries frames[sent:] on a fresh connection — and how many flushes
// reached the stream. Framing is untouched by coalescing: each frame keeps
// its own length prefix, only the syscall boundaries move.
func (e *Encoder) EncodeBatch(frames [][]byte, maxBytes int) (sent, flushes int, err error) {
	if err := e.arm(); err != nil {
		return 0, 0, err
	}
	buffered := 0
	for i, b := range frames {
		if err := e.writeFrame(b); err != nil {
			return sent, flushes, err
		}
		buffered += len(b) + 4
		if maxBytes > 0 && buffered >= maxBytes {
			if err := e.Flush(); err != nil {
				return sent, flushes, err
			}
			flushes++
			sent = i + 1
			buffered = 0
		}
	}
	if sent < len(frames) {
		if err := e.Flush(); err != nil {
			return sent, flushes, err
		}
		flushes++
		sent = len(frames)
	}
	return sent, flushes, nil
}

// Decoder reads length-prefixed frames from a stream.
type Decoder struct {
	r   *bufio.Reader
	buf bytes.Buffer
	hdr [4]byte // length-prefix scratch; a local would escape through io.ReadFull

	dl        ReadDeadliner
	dlTimeout time.Duration

	pool *pool.Pool
	st   *DecodeState
}

// NewDecoder wraps r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// ArmReadDeadline makes every subsequent Decode arm a read deadline of
// timeout on c before blocking, turning a silent peer into a timeout error
// after at most timeout of idleness. The deadline is re-armed per read leg
// (header, then body), so each leg must individually make progress to
// completion within timeout; a peer trickling a frame body cannot stretch
// one frame past two timeouts. A non-positive timeout disarms.
func (d *Decoder) ArmReadDeadline(c ReadDeadliner, timeout time.Duration) {
	d.dl, d.dlTimeout = c, timeout
}

// armLeg (re-)arms the read deadline ahead of one read leg.
func (d *Decoder) armLeg() error {
	if d.dl != nil && d.dlTimeout > 0 {
		return d.dl.SetReadDeadline(time.Now().Add(d.dlTimeout))
	}
	return nil
}

// UsePool attaches a slab pool to the decoder and allocates the per-stream
// DecodeState that makes DecodeInto zero-copy: frame bodies land in pooled
// slabs, payloads alias them, and repeated identifiers/views decode through
// intern tables.
func (d *Decoder) UsePool(p *pool.Pool) {
	d.pool = p
	d.st = NewDecodeState()
}

// initialBodyAlloc caps the up-front buffer reservation per frame; larger
// bodies grow as their bytes actually arrive, so a corrupt or hostile length
// prefix cannot force a large allocation on its own.
const initialBodyAlloc = 64 << 10

// Decode reads one frame into fully owned storage.
func (d *Decoder) Decode(f *Frame) error {
	if err := d.armLeg(); err != nil {
		return err
	}
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		return err
	}
	n := int(d.hdr[0])<<24 | int(d.hdr[1])<<16 | int(d.hdr[2])<<8 | int(d.hdr[3])
	if n > maxFrameSize {
		return ErrFrameTooLarge
	}
	if err := d.readBodyCopy(n); err != nil {
		return err
	}
	got, err := UnmarshalFrame(d.buf.Bytes())
	if err != nil {
		return err
	}
	*f = got
	return nil
}

// readBodyCopy reads an n-byte frame body into the decoder's own buffer,
// growing it only as bytes actually arrive.
func (d *Decoder) readBodyCopy(n int) error {
	if err := d.armLeg(); err != nil {
		return err
	}
	d.buf.Reset()
	d.buf.Grow(min(n, initialBodyAlloc))
	if _, err := io.CopyN(&d.buf, d.r, int64(n)); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

// DecodeInto reads one frame through the zero-copy path: the body lands in a
// pooled slab, byte-slice fields of f alias it, and f's pointer fields are
// the decoder's reusable scratch. The returned buffer backs the frame — the
// caller must Release it (once per retained reference) when the frame's
// payload is no longer in use, and must treat the frame as invalid after the
// next DecodeInto on this decoder.
//
// A nil buffer with a nil error means the frame was decoded through the
// copying path instead (no pool attached, or a body too large to pool) and f
// is fully owned except for its scratch pointer fields.
func (d *Decoder) DecodeInto(f *Frame) (*pool.Buf, error) {
	if err := d.armLeg(); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		return nil, err
	}
	n := int(d.hdr[0])<<24 | int(d.hdr[1])<<16 | int(d.hdr[2])<<8 | int(d.hdr[3])
	if n > maxFrameSize {
		return nil, ErrFrameTooLarge
	}
	if d.pool == nil || n > pool.MaxSlab {
		// Copying fallback: oversized bodies grow as bytes arrive so a
		// hostile length prefix cannot force a 16 MiB allocation up front.
		if err := d.readBodyCopy(n); err != nil {
			return nil, err
		}
		return nil, unmarshalFrameInto(d.buf.Bytes(), f, d.st, false)
	}
	if err := d.armLeg(); err != nil {
		return nil, err
	}
	buf := d.pool.Get(n)
	if _, err := io.ReadFull(d.r, buf.B()); err != nil {
		buf.Release()
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if err := unmarshalFrameInto(buf.B(), f, d.st, true); err != nil {
		buf.Release()
		return nil, err
	}
	return buf, nil
}
