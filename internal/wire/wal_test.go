package wire

import (
	"bytes"
	"testing"

	"vsgm/internal/types"
)

func walCorpus() []WALRecord {
	return []WALRecord{
		{Client: "a", CID: 1, Vid: 1, Epoch: 1},
		{Client: "longer-client-name", CID: 3 << 32, Vid: 99, Epoch: 3},
		{Client: "z", CID: 0, Vid: 0, Epoch: 0},
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	var log []byte
	recs := walCorpus()
	for _, rec := range recs {
		var err error
		if log, err = AppendWALRecord(log, rec); err != nil {
			t.Fatalf("append %+v: %v", rec, err)
		}
	}
	// A log is the concatenation of self-delimiting records.
	rest := log
	for i, want := range recs {
		got, r, err := DecodeWALRecord(rest)
		if err != nil {
			t.Fatalf("decode record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after full replay", len(rest))
	}
}

// TestWALRecordV1Migration pins the migration contract: a log written in the
// legacy v1 format still decodes, record for record, through the same entry
// point that handles v2.
func TestWALRecordV1Migration(t *testing.T) {
	var log []byte
	recs := walCorpus()
	for _, rec := range recs {
		var err error
		if log, err = AppendWALRecordV1(log, rec); err != nil {
			t.Fatalf("append v1 %+v: %v", rec, err)
		}
	}
	rest := log
	for i, want := range recs {
		got, r, err := DecodeWALRecord(rest)
		if err != nil {
			t.Fatalf("decode v1 record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("v1 record %d = %+v, want %+v", i, got, want)
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after v1 replay", len(rest))
	}
	// The scanner reports the v1 records so a repair pass knows to migrate.
	scan := ScanWAL(log)
	if scan.V1Records != len(recs) || len(scan.Damaged) != 0 {
		t.Fatalf("scan of pure v1 log: v1=%d damaged=%v", scan.V1Records, scan.Damaged)
	}
}

func TestDecodeWALRecordRejectsCorruption(t *testing.T) {
	full, err := AppendWALRecord(nil, WALRecord{Client: "abc", CID: 7, Vid: 2, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must error, never panic or fabricate a record.
	for i := 0; i < len(full); i++ {
		if _, _, err := DecodeWALRecord(full[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// A wrong magic byte is corruption, not a record.
	bad := append([]byte(nil), full...)
	bad[0] ^= 0xFF
	if _, _, err := DecodeWALRecord(bad); err == nil {
		t.Fatal("corrupt magic accepted")
	}
	// Any single flipped bit in a v2 record must fail the checksum (or the
	// framing) — this is the property v1 records cannot offer.
	for i := 0; i < len(full); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), full...)
			mut[i] ^= 1 << bit
			if rec, _, err := DecodeWALRecord(mut); err == nil {
				t.Fatalf("flipped bit %d of byte %d accepted as %+v", bit, i, rec)
			}
		}
	}
}

// TestScanWALResyncsPastDamage pins the skip-and-resync contract: damage in
// the middle of a log costs only the bytes it covers, and every record
// outside the damaged span is recovered with its offset.
func TestScanWALResyncsPastDamage(t *testing.T) {
	recs := []WALRecord{
		{Client: "a", CID: 1, Vid: 1, Epoch: 1},
		{Client: "b", CID: 2, Vid: 2, Epoch: 1},
		{Client: "c", CID: 3, Vid: 3, Epoch: 2},
	}
	var log []byte
	var bounds []int
	for _, rec := range recs {
		bounds = append(bounds, len(log))
		var err error
		if log, err = AppendWALRecord(log, rec); err != nil {
			t.Fatal(err)
		}
	}

	// Flip one byte inside the middle record: the scan must lose exactly
	// that record and keep the first and last.
	mut := append([]byte(nil), log...)
	mut[bounds[1]+walV2Header+3] ^= 0x5A
	scan := ScanWAL(mut)
	if len(scan.Records) != 2 || scan.Records[0] != recs[0] || scan.Records[1] != recs[2] {
		t.Fatalf("records after mid-log flip: %+v", scan.Records)
	}
	if len(scan.Damaged) != 1 {
		t.Fatalf("damaged ranges after mid-log flip: %+v", scan.Damaged)
	}
	d := scan.Damaged[0]
	if d.Off < bounds[1] || d.End() > bounds[2] {
		t.Fatalf("damage %+v escapes the corrupted record [%d,%d)", d, bounds[1], bounds[2])
	}

	// Garbage prefix: all three records survive, damage covers the prefix.
	pre := append(bytes.Repeat([]byte{0xEE}, 13), log...)
	scan = ScanWAL(pre)
	if len(scan.Records) != 3 || len(scan.Damaged) != 1 || scan.Damaged[0].Off != 0 || scan.Damaged[0].Len != 13 {
		t.Fatalf("garbage prefix scan: records=%d damaged=%+v", len(scan.Records), scan.Damaged)
	}

	// Torn tail: the partial record is damage, everything before survives.
	torn := append(append([]byte(nil), log...), log[:walV2Header+4]...)
	scan = ScanWAL(torn)
	if len(scan.Records) != 3 || len(scan.Damaged) != 1 || scan.Damaged[0].Off != len(log) {
		t.Fatalf("torn tail scan: records=%d damaged=%+v", len(scan.Records), scan.Damaged)
	}

	// Empty input is trivially clean.
	if scan := ScanWAL(nil); len(scan.Records) != 0 || len(scan.Damaged) != 0 {
		t.Fatalf("empty scan: %+v", scan)
	}
}

// FuzzDecodeWALRecord feeds arbitrary bytes through the WAL replay loop:
// whatever a crash or disk corruption leaves behind, decoding must stop with
// an error — never panic, hang, or over-allocate — and every record that
// does decode must survive a semantic re-encode/decode round trip (v1
// decodes re-encode as v2, so byte equality only binds v2 inputs).
func FuzzDecodeWALRecord(f *testing.F) {
	var log []byte
	for _, rec := range walCorpus() {
		b, err := AppendWALRecord(nil, rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)/2])
		log = append(log, b...)
		if b, err = AppendWALRecordV1(nil, rec); err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		log = append(log, b...)
	}
	f.Add(log)
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for len(rest) > 0 {
			wasV2 := rest[0] == walMagicV2
			rec, r, err := DecodeWALRecord(rest)
			if err != nil {
				return
			}
			re, err := AppendWALRecord(nil, rec)
			if err != nil {
				t.Fatalf("decoded record does not re-encode: %v (%+v)", err, rec)
			}
			if wasV2 && !bytes.Equal(re, rest[:len(rest)-len(r)]) {
				t.Fatalf("v2 re-encoding differs from input for %+v", rec)
			}
			back, rem, err := DecodeWALRecord(re)
			if err != nil || len(rem) != 0 || back != rec {
				t.Fatalf("re-encoded record does not round-trip: %+v vs %+v (err %v)", back, rec, err)
			}
			rest = r
		}
	})
}

// FuzzScanWAL drives the fsck skip-and-resync path with arbitrary bytes: the
// scan must terminate, account for every input byte exactly once (records
// plus damage partition the input), and every decoded record must decode
// again from its reported offset.
func FuzzScanWAL(f *testing.F) {
	var log []byte
	for _, rec := range walCorpus() {
		b, err := AppendWALRecord(nil, rec)
		if err != nil {
			f.Fatal(err)
		}
		log = append(log, b...)
	}
	f.Add(log)
	f.Add(log[3:])
	mut := append([]byte(nil), log...)
	mut[len(mut)/2] ^= 0xFF
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		scan := ScanWAL(data)
		covered := 0
		di := 0
		for i, off := range scan.Offsets {
			for di < len(scan.Damaged) && scan.Damaged[di].Off < off {
				covered += scan.Damaged[di].Len
				di++
			}
			rec, rest, err := DecodeWALRecord(data[off:])
			if err != nil {
				t.Fatalf("record %d at offset %d does not re-decode: %v", i, off, err)
			}
			if rec != scan.Records[i] {
				t.Fatalf("record %d at offset %d decodes differently: %+v vs %+v", i, off, rec, scan.Records[i])
			}
			if off != covered {
				t.Fatalf("record %d claims offset %d but %d bytes are accounted for", i, off, covered)
			}
			covered = len(data) - len(rest)
		}
		for di < len(scan.Damaged) {
			covered += scan.Damaged[di].Len
			di++
		}
		if covered != len(data) {
			t.Fatalf("scan accounted for %d of %d bytes", covered, len(data))
		}
	})
}

// TestWALRecordIDLengthBound pins the identifier length guard: an id longer
// than the u16 length prefix can carry must be rejected at append time.
func TestWALRecordIDLengthBound(t *testing.T) {
	huge := types.ProcID(bytes.Repeat([]byte("x"), 1<<16))
	if _, err := AppendWALRecord(nil, WALRecord{Client: huge}); err == nil {
		t.Fatal("oversized v2 client id accepted")
	}
	if _, err := AppendWALRecordV1(nil, WALRecord{Client: huge}); err == nil {
		t.Fatal("oversized v1 client id accepted")
	}
}
