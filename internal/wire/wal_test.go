package wire

import (
	"bytes"
	"testing"

	"vsgm/internal/types"
)

func walCorpus() []WALRecord {
	return []WALRecord{
		{Client: "a", CID: 1, Vid: 1, Epoch: 1},
		{Client: "longer-client-name", CID: 3 << 32, Vid: 99, Epoch: 3},
		{Client: "z", CID: 0, Vid: 0, Epoch: 0},
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	var log []byte
	recs := walCorpus()
	for _, rec := range recs {
		var err error
		if log, err = AppendWALRecord(log, rec); err != nil {
			t.Fatalf("append %+v: %v", rec, err)
		}
	}
	// A log is the concatenation of self-delimiting records.
	rest := log
	for i, want := range recs {
		got, r, err := DecodeWALRecord(rest)
		if err != nil {
			t.Fatalf("decode record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after full replay", len(rest))
	}
}

func TestDecodeWALRecordRejectsCorruption(t *testing.T) {
	full, err := AppendWALRecord(nil, WALRecord{Client: "abc", CID: 7, Vid: 2, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must error, never panic or fabricate a record.
	for i := 0; i < len(full); i++ {
		if _, _, err := DecodeWALRecord(full[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// A wrong magic byte is corruption, not a record.
	bad := append([]byte(nil), full...)
	bad[0] ^= 0xFF
	if _, _, err := DecodeWALRecord(bad); err == nil {
		t.Fatal("corrupt magic accepted")
	}
}

// FuzzDecodeWALRecord feeds arbitrary bytes through the WAL replay loop:
// whatever a crash or disk corruption leaves behind, decoding must stop with
// an error — never panic, hang, or over-allocate — and every record that
// does decode must re-encode to the bytes it was decoded from.
func FuzzDecodeWALRecord(f *testing.F) {
	var log []byte
	for _, rec := range walCorpus() {
		b, err := AppendWALRecord(nil, rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)/2])
		log = append(log, b...)
	}
	f.Add(log)
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for len(rest) > 0 {
			rec, r, err := DecodeWALRecord(rest)
			if err != nil {
				return
			}
			re, err := AppendWALRecord(nil, rec)
			if err != nil {
				t.Fatalf("decoded record does not re-encode: %v (%+v)", err, rec)
			}
			if !bytes.Equal(re, rest[:len(rest)-len(r)]) {
				t.Fatalf("re-encoding differs from input for %+v", rec)
			}
			rest = r
		}
	})
}

// TestWALRecordIDLengthBound pins the identifier length guard: an id longer
// than the u16 length prefix can carry must be rejected at append time.
func TestWALRecordIDLengthBound(t *testing.T) {
	huge := types.ProcID(bytes.Repeat([]byte("x"), 1<<16))
	if _, err := AppendWALRecord(nil, WALRecord{Client: huge}); err == nil {
		t.Fatal("oversized client id accepted")
	}
}
