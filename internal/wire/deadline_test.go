package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"vsgm/internal/types"
)

// net.Pipe is unbuffered: a write blocks until the far side reads, which
// makes it a precise stand-in for a peer that stopped draining its socket.

func TestEncoderWriteDeadlineUnsticksWriter(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	enc := NewEncoder(a)
	enc.ArmWriteDeadline(a, 30*time.Millisecond)
	start := time.Now()
	err := enc.Encode(Frame{From: "stuck"})
	if err == nil {
		t.Fatal("Encode to a non-draining peer succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("Encode error = %v, want a net timeout", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("deadline took %v to fire", took)
	}
}

func TestDecoderReadDeadlineUnsticksReader(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	dec := NewDecoder(a)
	dec.ArmReadDeadline(a, 30*time.Millisecond)
	var fr Frame
	err := dec.Decode(&fr)
	if err == nil {
		t.Fatal("Decode from a silent peer succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("Decode error = %v, want a net timeout", err)
	}
}

func TestEncoderNoDeadlineByDefault(t *testing.T) {
	// Without arming, Encode to a buffer must still work unchanged.
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	m := types.WireMsg{Kind: types.KindHeartbeat}
	if err := enc.Encode(Frame{From: "a", Msg: &m}); err != nil {
		t.Fatal(err)
	}
	var got Frame
	if err := NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.From != "a" || got.Msg == nil || got.Msg.Kind != types.KindHeartbeat {
		t.Fatalf("round trip mangled: %+v", got)
	}
}

func TestDecodeTruncatedBodyReturnsUnexpectedEOF(t *testing.T) {
	// Header claims 15 MiB; only 16 bytes follow. The decoder must report a
	// truncation error without reserving anywhere near the claimed size.
	claimed := 15 << 20
	input := []byte{byte(claimed >> 24), byte(claimed >> 16), byte(claimed >> 8), byte(claimed)}
	input = append(input, make([]byte, 16)...)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var fr Frame
	err := NewDecoder(bytes.NewReader(input)).Decode(&fr)
	runtime.ReadMemStats(&after)

	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("Decode = %v, want io.ErrUnexpectedEOF", err)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 4<<20 {
		t.Fatalf("truncated 15 MiB claim allocated %d bytes", grew)
	}
}

func TestDecodeOversizeFrameRejected(t *testing.T) {
	input := []byte{0xff, 0xff, 0xff, 0xff, 0x00}
	var fr Frame
	if err := NewDecoder(bytes.NewReader(input)).Decode(&fr); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("Decode = %v, want ErrFrameTooLarge", err)
	}
}

func TestDecodeCorruptCountsDoNotOverAllocate(t *testing.T) {
	// A view body whose member count claims 2^32-1 entries but carries none:
	// the decoder must fail on truncation with only a clamped allocation.
	body := []byte{0, 1, 'p', frameMsg, byte(types.KindView)}
	body = append(body, 0, 0, 0, 0, 0, 0, 0, 9) // view id
	body = append(body, 0xff, 0xff, 0xff, 0xff) // member count
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := UnmarshalFrame(body)
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("corrupt member count decoded successfully")
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<20 {
		t.Fatalf("corrupt count allocated %d bytes", grew)
	}
}
