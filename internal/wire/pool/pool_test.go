package pool

import (
	"strings"
	"sync"
	"testing"
)

func TestClassRounding(t *testing.T) {
	p := New()
	cases := []struct{ n, wantCap int }{
		{1, 512}, {512, 512}, {513, 1024}, {4096, 4096},
		{64 << 10, 64 << 10}, {128 << 10, 128 << 10},
	}
	for _, c := range cases {
		b := p.Get(c.n)
		if len(b.B()) != c.n || b.Cap() != c.wantCap {
			t.Errorf("Get(%d): len=%d cap=%d, want len=%d cap=%d", c.n, len(b.B()), b.Cap(), c.n, c.wantCap)
		}
		b.Release()
	}
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("outstanding after releases = %d, want 0", got)
	}
}

func TestOversizedNeverPooled(t *testing.T) {
	p := New()
	b := p.Get((128 << 10) + 1)
	if b.class != -1 {
		t.Fatalf("oversized buf got class %d, want -1", b.class)
	}
	b.Release()
	s := p.Stats()
	if s.Hits != 0 || s.Misses != 1 || s.Outstanding != 0 {
		t.Fatalf("stats after oversized cycle: %+v", s)
	}
}

func TestRingReuseAndStats(t *testing.T) {
	p := New()
	b := p.Get(1000)
	first := &b.B()[:1][0]
	b.Release()
	b2 := p.Get(900) // same class: must come back from the ring
	if &b2.B()[:1][0] != first {
		t.Fatal("second Get of the same class did not reuse the released slab")
	}
	b2.Release()
	s := p.Stats()
	if s.Gets != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want gets=2 hits=1 misses=1", s)
	}
}

func TestRetainRelease(t *testing.T) {
	p := New()
	b := p.Get(100)
	b.Retain(2) // three consumers total
	b.Release()
	b.Release()
	if p.Outstanding() != 1 {
		t.Fatalf("outstanding with one ref left = %d, want 1", p.Outstanding())
	}
	b.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding after final release = %d, want 0", p.Outstanding())
	}
}

// TestDoubleReleasePanics pins the misuse guard: a release beyond the last
// reference must panic with a diagnostic naming the pool, not silently
// corrupt a recycled slab.
func TestDoubleReleasePanics(t *testing.T) {
	p := New()
	b := p.Get((128 << 10) + 1) // oversized: final release does not re-ring it
	b.Release()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double Release did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "over-released") {
			t.Fatalf("double Release panic = %v, want an over-released diagnostic", r)
		}
	}()
	b.Release()
}

func TestRetainAfterReleasePanics(t *testing.T) {
	p := New()
	b := p.Get((128 << 10) + 1)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain on a fully released Buf did not panic")
		}
	}()
	b.Retain(1)
}

// TestConcurrentChurn hammers Get/Retain/Release from many goroutines; run
// under -race this is the pool's memory-model check.
func TestConcurrentChurn(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b := p.Get(64 + (seed+i)%4000)
				b.B()[0] = byte(i)
				b.Retain(1)
				b.Release()
				if b.B()[0] != byte(i) {
					t.Error("slab mutated while referenced")
				}
				b.Release()
			}
		}(g)
	}
	wg.Wait()
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding after churn = %d, want 0", p.Outstanding())
	}
}
