// Package pool provides the transport's receive-side memory: a size-classed
// slab allocator handing out reference-counted byte buffers through small
// rings of reusable slabs. The reactor (and the fallback per-link reader)
// read many frames per wakeup into one pooled slab; every decoded frame that
// aliases the slab holds a reference, and the final release returns the slab
// to its ring instead of the garbage collector. Misuse is loud: releasing a
// buffer more often than it was retained panics with a diagnostic, and the
// pool keeps an outstanding count so tests can assert that every buffer
// checked out during a run came back.
package pool

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Size classes are powers of two from minClass to maxClass. A Get larger
// than the top class is served by a plain allocation that is never pooled
// (occasional giant frames must not pin huge arrays in the rings).
const (
	minClassBits = 9  // 512 B
	maxClassBits = 17 // 128 KiB
	numClasses   = maxClassBits - minClassBits + 1
)

// MaxSlab is the largest pooled buffer size; Gets beyond it are exact,
// unpooled allocations. Callers that want hostile length prefixes to pay as
// bytes arrive (rather than up-front) should switch to an incremental path
// above this bound.
const MaxSlab = 1 << maxClassBits

// ringCap bounds each class's ring: at most this many free slabs are
// retained per class; further releases fall through to the GC.
const ringCap = 64

// Buf is one reference-counted pooled buffer. A Get returns a Buf holding a
// single reference; every additional consumer Retains before use and every
// consumer Releases exactly once. The final Release recycles the slab, after
// which B's contents must no longer be read.
type Buf struct {
	b     []byte
	refs  atomic.Int32
	pool  *Pool
	class int8 // -1: oversized, never pooled
}

// B returns the buffer's bytes (length as set by Get or Resize).
func (b *Buf) B() []byte { return b.b }

// Cap returns the slab's capacity.
func (b *Buf) Cap() int { return cap(b.b) }

// Resize sets the buffer's visible length to n, which must fit the slab.
func (b *Buf) Resize(n int) {
	if n > cap(b.b) {
		panic(fmt.Sprintf("pool: Resize(%d) beyond slab capacity %d", n, cap(b.b)))
	}
	b.b = b.b[:n]
}

// Refs returns the current reference count (diagnostic; racy by nature).
func (b *Buf) Refs() int32 { return b.refs.Load() }

// Retain adds n references on behalf of additional consumers.
func (b *Buf) Retain(n int32) {
	if v := b.refs.Add(n); v-n <= 0 {
		panic(fmt.Sprintf("pool: Retain(%d) on a released Buf (refs now %d)", n, v))
	}
}

// Release drops one reference; the final one returns the slab to its ring.
// Releasing more than was retained panics: a double release means some
// consumer is still reading memory the pool is about to hand to another
// connection, and that must fail loudly, not corrupt frames.
func (b *Buf) Release() {
	switch n := b.refs.Add(-1); {
	case n > 0:
	case n == 0:
		p := b.pool
		p.outstanding.Add(-1)
		if b.class >= 0 {
			p.rings[b.class].put(b)
		}
	default:
		panic(fmt.Sprintf("pool: Buf over-released (refs %d): double Release, or Release after the final one recycled the slab", n))
	}
}

// ring is a bounded LIFO free list of slabs for one size class. LIFO keeps
// recently used (cache-warm) slabs circulating and lets the cold tail be
// dropped when the ring overflows.
type ring struct {
	mu   sync.Mutex
	free []*Buf
}

func (r *ring) get() *Buf {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.free); n > 0 {
		b := r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		return b
	}
	return nil
}

func (r *ring) put(b *Buf) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.free) < ringCap {
		r.free = append(r.free, b)
	}
	// Overflow: drop to the GC; the slab's backing array is simply garbage.
}

// Stats is a snapshot of a pool's counters.
type Stats struct {
	// Gets counts buffers checked out; Hits the ones served from a ring,
	// Misses the ones freshly allocated (including oversized one-offs).
	Gets   int64 `json:"gets"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Outstanding is the number of buffers currently checked out (Gets
	// minus final Releases) — nonzero after shutdown means a leak.
	Outstanding int64 `json:"outstanding"`
}

// Pool is a size-classed slab allocator. The zero value is not usable; use
// New.
type Pool struct {
	rings       [numClasses]*ring
	gets        atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	outstanding atomic.Int64
}

// New returns an empty pool; slabs are allocated on demand and recycled
// through per-class rings.
func New() *Pool {
	p := &Pool{}
	for i := range p.rings {
		p.rings[i] = &ring{}
	}
	return p
}

// classFor returns the smallest class index whose slab holds n bytes, or -1
// when n exceeds the largest class.
func classFor(n int) int {
	if n > 1<<maxClassBits {
		return -1
	}
	c := 0
	for n > 1<<(minClassBits+c) {
		c++
	}
	return c
}

// Get returns a buffer of length n (capacity rounded up to the size class),
// holding one reference. Buffers beyond the largest class are allocated
// exactly and never pooled.
func (p *Pool) Get(n int) *Buf {
	p.gets.Add(1)
	p.outstanding.Add(1)
	class := classFor(n)
	if class < 0 {
		p.misses.Add(1)
		b := &Buf{b: make([]byte, n), pool: p, class: -1}
		b.refs.Store(1)
		return b
	}
	if b := p.rings[class].get(); b != nil {
		p.hits.Add(1)
		b.b = b.b[:n]
		b.refs.Store(1)
		return b
	}
	p.misses.Add(1)
	b := &Buf{b: make([]byte, n, 1<<(minClassBits+class)), pool: p, class: int8(class)}
	b.refs.Store(1)
	return b
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Gets:        p.gets.Load(),
		Hits:        p.hits.Load(),
		Misses:      p.misses.Load(),
		Outstanding: p.outstanding.Load(),
	}
}

// Outstanding is the number of buffers currently checked out. Zero after a
// clean shutdown; anything else is a leaked reference.
func (p *Pool) Outstanding() int64 { return p.outstanding.Load() }
