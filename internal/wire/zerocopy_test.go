package wire

import (
	"bytes"
	"errors"
	"net"
	"os"
	"reflect"
	"testing"
	"time"

	"vsgm/internal/types"
	"vsgm/internal/wire/pool"
)

func testAppFrame(t testing.TB, payload []byte) Frame {
	t.Helper()
	members := types.NewProcSet()
	start := map[types.ProcID]types.StartChangeID{}
	for i, p := range []types.ProcID{"s1", "s2", "c-alpha"} {
		members.Add(p)
		start[p] = types.StartChangeID(i + 1)
	}
	v := types.NewView(7, members, start)
	return Frame{
		From: "c-alpha",
		Msg: &types.WireMsg{
			Kind:      types.KindApp,
			App:       types.AppMsg{ID: 42, Payload: payload},
			HistView:  v,
			HistIndex: 5,
		},
	}
}

// frameStream returns n copies of f's on-the-wire encoding (length prefix +
// body) concatenated.
func frameStream(t testing.TB, f Frame, n int) []byte {
	t.Helper()
	body, err := MarshalFrame(f)
	if err != nil {
		t.Fatalf("MarshalFrame: %v", err)
	}
	var s bytes.Buffer
	for i := 0; i < n; i++ {
		s.Write([]byte{byte(len(body) >> 24), byte(len(body) >> 16), byte(len(body) >> 8), byte(len(body))})
		s.Write(body)
	}
	return s.Bytes()
}

// sliceWithin reports whether sub's backing memory lies inside outer's.
func sliceWithin(sub, outer []byte) bool {
	if len(sub) == 0 || len(outer) == 0 {
		return false
	}
	for i := range outer {
		if &outer[i] == &sub[0] {
			return true
		}
	}
	return false
}

// TestDecodeIntoAliasesPooledSlab pins the zero-copy contract: the decoded
// application payload must be a window into the returned pooled slab, not a
// copy, and releasing the slab must return it to the pool.
func TestDecodeIntoAliasesPooledSlab(t *testing.T) {
	p := pool.New()
	payload := bytes.Repeat([]byte("zc"), 600)
	f := testAppFrame(t, payload)
	d := NewDecoder(bytes.NewReader(frameStream(t, f, 1)))
	d.UsePool(p)

	var got Frame
	buf, err := d.DecodeInto(&got)
	if err != nil {
		t.Fatalf("DecodeInto: %v", err)
	}
	if buf == nil {
		t.Fatal("DecodeInto returned a nil Buf on the pooled path")
	}
	if got.Msg == nil || !bytes.Equal(got.Msg.App.Payload, payload) {
		t.Fatal("decoded payload mismatch")
	}
	if !sliceWithin(got.Msg.App.Payload, buf.B()) {
		t.Fatal("payload does not alias the pooled slab: the receive path copied")
	}
	if got.From != f.From || got.Msg.App.ID != 42 || got.Msg.HistView.ID != 7 {
		t.Fatalf("frame fields mismatch: %+v", got)
	}
	buf.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding after release = %d, want 0", p.Outstanding())
	}
}

// TestDecodeIntoScratchReuse pins the borrow contract: successive DecodeInto
// calls reuse the same scratch Msg, so receivers must copy what they keep —
// and in exchange pay no per-frame allocation for the pointer fields.
func TestDecodeIntoScratchReuse(t *testing.T) {
	p := pool.New()
	f := testAppFrame(t, []byte("hello"))
	d := NewDecoder(bytes.NewReader(frameStream(t, f, 2)))
	d.UsePool(p)

	var a, b Frame
	buf1, err := d.DecodeInto(&a)
	if err != nil {
		t.Fatalf("first DecodeInto: %v", err)
	}
	msg1 := a.Msg
	buf1.Release()
	buf2, err := d.DecodeInto(&b)
	if err != nil {
		t.Fatalf("second DecodeInto: %v", err)
	}
	defer buf2.Release()
	if b.Msg != msg1 {
		t.Fatal("Msg scratch not reused across decodes on one stream")
	}
	if !bytes.Equal(b.Msg.App.Payload, []byte("hello")) {
		t.Fatal("second decode corrupted")
	}
}

// TestDecodeIntoInternsViews: the repeated history view on every data frame
// must decode once and then be served from the intern table, sharing member
// maps across frames.
func TestDecodeIntoInternsViews(t *testing.T) {
	p := pool.New()
	f := testAppFrame(t, []byte("x"))
	d := NewDecoder(bytes.NewReader(frameStream(t, f, 2)))
	d.UsePool(p)

	var a, b Frame
	buf1, err := d.DecodeInto(&a)
	if err != nil {
		t.Fatalf("first DecodeInto: %v", err)
	}
	v1 := a.Msg.HistView
	buf1.Release()
	buf2, err := d.DecodeInto(&b)
	if err != nil {
		t.Fatalf("second DecodeInto: %v", err)
	}
	defer buf2.Release()
	if reflect.ValueOf(v1.StartID).Pointer() != reflect.ValueOf(b.Msg.HistView.StartID).Pointer() {
		t.Fatal("second frame's history view was re-decoded instead of interned")
	}
	if v1.StartID["s1"] != b.Msg.HistView.StartID["s1"] || b.Msg.HistView.ID != 7 {
		t.Fatal("interned view decoded incorrectly")
	}
}

// TestDecodeIntoWithoutPoolCopies: without a pool the zero-copy entry point
// degrades to the copying path and returns no buffer to manage.
func TestDecodeIntoWithoutPoolCopies(t *testing.T) {
	f := testAppFrame(t, []byte("plain"))
	d := NewDecoder(bytes.NewReader(frameStream(t, f, 1)))
	var got Frame
	buf, err := d.DecodeInto(&got)
	if err != nil {
		t.Fatalf("DecodeInto: %v", err)
	}
	if buf != nil {
		t.Fatal("DecodeInto without a pool returned a pooled buffer")
	}
	if !bytes.Equal(got.Msg.App.Payload, []byte("plain")) {
		t.Fatal("payload mismatch on copying path")
	}
}

// TestDecodeIntoOversizedBodyFallsBack: bodies beyond the largest slab class
// take the incremental copying path (hostile length prefixes must pay as
// bytes arrive), still returning a correct frame and no pooled buffer.
func TestDecodeIntoOversizedBodyFallsBack(t *testing.T) {
	p := pool.New()
	payload := make([]byte, pool.MaxSlab+1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	f := testAppFrame(t, payload)
	d := NewDecoder(bytes.NewReader(frameStream(t, f, 1)))
	d.UsePool(p)
	var got Frame
	buf, err := d.DecodeInto(&got)
	if err != nil {
		t.Fatalf("DecodeInto: %v", err)
	}
	if buf != nil {
		t.Fatal("oversized body came back on the pooled path")
	}
	if !bytes.Equal(got.Msg.App.Payload, payload) {
		t.Fatal("oversized payload mismatch")
	}
	if p.Outstanding() != 0 {
		t.Fatalf("oversized fallback leaked pool buffers: %d", p.Outstanding())
	}
}

// repeatReader replays one encoded frame forever.
type repeatReader struct {
	frame []byte
	off   int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.off == len(r.frame) {
		r.off = 0
	}
	n := copy(p, r.frame[r.off:])
	r.off += n
	return n, nil
}

// TestZeroCopyReceiveAllocs enforces the acceptance ceiling: steady-state
// decode of an application data frame through the pooled path allocates at
// most once per frame (the target is zero: slab from the ring, payload
// aliased, identifiers and views interned, scratch reused).
func TestZeroCopyReceiveAllocs(t *testing.T) {
	p := pool.New()
	f := testAppFrame(t, bytes.Repeat([]byte("a"), 512))
	d := NewDecoder(&repeatReader{frame: frameStream(t, f, 1)})
	d.UsePool(p)

	var got Frame
	// Warm the intern tables and the slab ring.
	for i := 0; i < 4; i++ {
		buf, err := d.DecodeInto(&got)
		if err != nil {
			t.Fatalf("warmup DecodeInto: %v", err)
		}
		buf.Release()
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf, err := d.DecodeInto(&got)
		if err != nil {
			t.Fatalf("DecodeInto: %v", err)
		}
		buf.Release()
	})
	if allocs > 1 {
		t.Fatalf("zero-copy receive allocates %.1f/op, ceiling is 1", allocs)
	}
}

// TestDecodeRearmsDeadlinePerLeg: a header that arrives late must not eat
// the body's deadline budget — each read leg gets its own arming. Before the
// fix, the deadline was armed once before the header, so a frame whose
// header consumed most of the timeout failed in the body even though both
// legs individually made timely progress.
func TestDecodeRearmsDeadlinePerLeg(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()

	f := testAppFrame(t, []byte("late"))
	stream := frameStream(t, f, 1)
	const timeout = 250 * time.Millisecond

	go func() {
		time.Sleep(150 * time.Millisecond) // header lands late in its leg
		srv.Write(stream[:4])
		time.Sleep(150 * time.Millisecond) // body lands in the re-armed leg
		srv.Write(stream[4:])
	}()

	d := NewDecoder(cli)
	d.ArmReadDeadline(cli, timeout)
	var got Frame
	if err := d.Decode(&got); err != nil {
		t.Fatalf("Decode with per-leg arming failed: %v (total frame time exceeded one timeout, but each leg was within it)", err)
	}
	if !bytes.Equal(got.Msg.App.Payload, []byte("late")) {
		t.Fatal("payload mismatch")
	}
}

// TestDecodeBodyStallStillTimesOut: per-leg re-arming must not make the body
// leg unbounded — a peer that sends a header and then goes silent is cut off
// after one more timeout.
func TestDecodeBodyStallStillTimesOut(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()

	f := testAppFrame(t, []byte("stall"))
	stream := frameStream(t, f, 1)
	go srv.Write(stream[:6]) // header plus two body bytes, then silence

	d := NewDecoder(cli)
	d.ArmReadDeadline(cli, 100*time.Millisecond)
	var got Frame
	start := time.Now()
	err := d.Decode(&got)
	if err == nil {
		t.Fatal("Decode succeeded on a stalled body")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled body error = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stalled body took %v to time out", elapsed)
	}
}

// TestDecodeIntoBodyStallTimesOut covers the same stall through the pooled
// path, and checks the half-filled slab is returned to the pool on error.
func TestDecodeIntoBodyStallTimesOut(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()

	p := pool.New()
	f := testAppFrame(t, []byte("stall"))
	stream := frameStream(t, f, 1)
	go srv.Write(stream[:6])

	d := NewDecoder(cli)
	d.UsePool(p)
	d.ArmReadDeadline(cli, 100*time.Millisecond)
	var got Frame
	buf, err := d.DecodeInto(&got)
	if err == nil {
		buf.Release()
		t.Fatal("DecodeInto succeeded on a stalled body")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled body error = %v, want deadline exceeded", err)
	}
	if p.Outstanding() != 0 {
		t.Fatalf("stalled decode leaked %d pool buffers", p.Outstanding())
	}
}
