package core

import "vsgm/internal/types"

// ProtocolTrace receives the reconfiguration milestones of one end-point:
// the start_change arriving, the synchronization message being committed and
// sent (first send vs. watchdog resend / probe answer), peers' sync messages
// arriving, and the view that resolves the change being installed. The
// observability tracer (internal/obs) satisfies this interface structurally;
// core itself depends on nothing.
//
// All methods are invoked synchronously from the automaton's guarded
// actions, in automaton order, under the caller's serialization (the core
// package itself is single-threaded per end-point). Implementations must not
// call back into the end-point.
type ProtocolTrace interface {
	// StartChange fires when HandleStartChange accepts a fresh change.
	StartChange(sc types.StartChange)
	// SyncSent fires when a synchronization message for cid is committed
	// and sent; resend marks watchdog resends and probe answers.
	SyncSent(cid types.StartChangeID, trace uint64, resend bool)
	// SyncReceived fires when a peer's synchronization message for cid is
	// stored (including entries unpacked from leader bundles).
	SyncReceived(from types.ProcID, cid types.StartChangeID, trace uint64)
	// ViewInstalled fires when tryDeliverView emits a view to the
	// application.
	ViewInstalled(v types.View)
}
