package core

import (
	"sort"

	"vsgm/internal/types"
)

// Forward is one forwarding obligation computed by a strategy: send the
// message with the given 1-based Index originally sent by Origin in the
// end-point's current view to each destination in Dests.
type Forward struct {
	Dests  []types.ProcID
	Origin types.ProcID
	Index  int
}

// ForwardingStrategy is the ForwardingStrategyPredicate of Section 5.2.2 in
// executable form: given the end-point's state, it returns the set of
// forwards currently enabled. The end-point deduplicates per destination
// (the forwarded_set of Figure 10), so strategies may return the same
// obligation repeatedly.
type ForwardingStrategy interface {
	// Name identifies the strategy in metrics and experiment tables.
	Name() string
	// Plan computes the enabled forwards for e.
	Plan(e *Endpoint) []Forward
}

// forwardPlan accumulates (origin, index) → destinations and emits a
// deterministic plan.
type forwardPlan struct {
	dests map[types.ProcID]map[int][]types.ProcID
}

func newForwardPlan() *forwardPlan {
	return &forwardPlan{dests: make(map[types.ProcID]map[int][]types.ProcID)}
}

func (fp *forwardPlan) add(origin types.ProcID, index int, dest types.ProcID) {
	row := fp.dests[origin]
	if row == nil {
		row = make(map[int][]types.ProcID)
		fp.dests[origin] = row
	}
	row[index] = append(row[index], dest)
}

func (fp *forwardPlan) build() []Forward {
	if len(fp.dests) == 0 {
		return nil
	}
	var out []Forward
	origins := make([]types.ProcID, 0, len(fp.dests))
	for origin := range fp.dests {
		origins = append(origins, origin)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, origin := range origins {
		row := fp.dests[origin]
		indexes := make([]int, 0, len(row))
		for i := range row {
			indexes = append(indexes, i)
		}
		sort.Ints(indexes)
		for _, i := range indexes {
			ds := row[i]
			sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
			out = append(out, Forward{Dests: ds, Origin: origin, Index: i})
		}
	}
	return out
}

// simpleForwarding implements the paper's first example strategy: a process
// p forwards a message m (sent in p's current view) that p has committed to
// deliver, to any process q whose latest relevant synchronization message —
// sent in the same view — indicates that q has not received m. Multiple
// committed holders may each forward a copy.
type simpleForwarding struct{}

// NewSimpleForwarding returns the Section 5.2.2 "simple strategy".
func NewSimpleForwarding() ForwardingStrategy { return simpleForwarding{} }

func (simpleForwarding) Name() string { return "simple" }

func (simpleForwarding) Plan(e *Endpoint) []Forward {
	if e.startChange == nil {
		return nil
	}
	own := e.syncMsgOf(e.id, e.startChange.ID)
	if own == nil {
		return nil
	}

	// Peers we might owe messages to: everyone we have exchanged
	// synchronization state with in this change, restricted to those whose
	// relevant sync message was sent in our current view (anyone else
	// either moved from a different view — and cannot need our old-view
	// messages — or is unknown).
	plan := newForwardPlan()
	peers := e.startChange.Set.Union(e.currentView.Members)
	for q := range peers {
		if q == e.id {
			continue
		}
		sm := e.latestSyncFrom(q)
		if sm == nil || sm.Small || !sm.View.Equal(e.currentView) {
			continue
		}
		for _, r := range e.curMembers {
			if q == r {
				continue // q receives r's messages from r itself
			}
			committed := own.Cut[r]
			for i := sm.Cut[r] + 1; i <= committed; i++ {
				plan.add(r, i, q)
			}
		}
	}
	return plan.build()
}

// latestSyncFrom returns q's synchronization message for the in-progress
// change: the one tagged with the membership view's startId for q when the
// view is known, otherwise the highest-cid message received from q.
func (e *Endpoint) latestSyncFrom(q types.ProcID) *types.SyncMsg {
	if sid, ok := e.mbrshpView.StartID[q]; ok {
		if sm := e.syncMsgOf(q, sid); sm != nil {
			return sm
		}
	}
	var (
		best    *types.SyncMsg
		bestCid types.StartChangeID = -1
	)
	for cid, sm := range e.syncMsgs[q] {
		if cid > bestCid {
			best, bestCid = sm, cid
		}
	}
	return best
}

// minCopiesForwarding implements the paper's second example strategy: once
// the membership view and all relevant synchronization messages are known,
// the transitional set T deterministically agrees which single member
// forwards each message missed by other members of T — the minimum-id member
// whose cut commits the message. Only messages originally sent by
// end-points outside T are forwarded (members of T retransmit their own
// streams themselves).
type minCopiesForwarding struct{}

// NewMinCopiesForwarding returns the Section 5.2.2 copy-minimizing strategy.
func NewMinCopiesForwarding() ForwardingStrategy { return minCopiesForwarding{} }

func (minCopiesForwarding) Name() string { return "min-copies" }

func (minCopiesForwarding) Plan(e *Endpoint) []Forward {
	if e.startChange == nil {
		return nil
	}
	v := e.mbrshpView
	sid, ok := v.StartID[e.id]
	if !ok || sid != e.startChange.ID {
		return nil // wait for the membership view matching this change
	}
	own := e.syncMsgOf(e.id, sid)
	if own == nil {
		return nil // have not sent our own sync message yet
	}

	// I = v.set ∩ (our previous view); all relevant syncs must be known.
	var trans []types.ProcID
	cuts := make(map[types.ProcID]types.Cut)
	for q := range v.Members {
		if !own.View.Members.Contains(q) {
			continue
		}
		sm := e.syncMsgOf(q, v.StartID[q])
		if sm == nil {
			return nil // wait for all relevant sync messages
		}
		if !sm.Small && sm.View.Equal(own.View) {
			trans = append(trans, q)
			cuts[q] = sm.Cut
		}
	}
	sort.Slice(trans, func(i, j int) bool { return trans[i] < trans[j] })
	if len(trans) == 0 || !containsProc(trans, e.id) {
		return nil
	}

	plan := newForwardPlan()
	for _, r := range e.curMembers {
		if containsProc(trans, r) {
			continue // members of T recover each other's streams directly
		}
		maxCommitted := 0
		for _, u := range trans {
			if c := cuts[u][r]; c > maxCommitted {
				maxCommitted = c
			}
		}
		for _, u := range trans {
			missFrom := cuts[u][r] + 1
			if missFrom > maxCommitted {
				continue // u misses nothing from r
			}
			for i := missFrom; i <= maxCommitted; i++ {
				// The forwarder for index i is the minimum-id member of T
				// whose cut commits i; trans is sorted, so the first
				// qualifying member wins.
				if forwarderFor(trans, cuts, r, i) == e.id {
					plan.add(r, i, u)
				}
			}
		}
	}
	return plan.build()
}

func forwarderFor(trans []types.ProcID, cuts map[types.ProcID]types.Cut, r types.ProcID, i int) types.ProcID {
	for _, u := range trans {
		if cuts[u][r] >= i {
			return u
		}
	}
	return ""
}

func containsProc(list []types.ProcID, p types.ProcID) bool {
	for _, q := range list {
		if q == p {
			return true
		}
	}
	return false
}
