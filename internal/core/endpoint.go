// Package core implements the GCS end-point automaton of Section 5 of
// Keidar & Khazan: the client-side algorithm that turns an external
// membership service (satisfying the MBRSHP spec) and a reliable FIFO
// substrate (CO_RFIFO) into a virtually synchronous group multicast service.
//
// The paper constructs the algorithm incrementally with an inheritance-based
// formalism: WV_RFIFO (Figure 9) provides within-view reliable FIFO
// multicast; VS_RFIFO+TS (Figure 10) adds Virtual Synchrony and Transitional
// Sets via a single round of synchronization messages tagged with locally
// unique start-change identifiers; GCS (Figure 11) adds Self Delivery by
// blocking the client during reconfiguration. The Level configuration knob
// selects how much of the hierarchy is active, exactly mirroring the child
// automata's transition restrictions.
//
// The end-point is a guarded-action state machine: external inputs are
// methods (HandleStartChange, HandleView, HandleMessage, Send, BlockOK), and
// after each input the automaton fires its enabled locally controlled
// actions to quiescence, queueing output events for the application.
package core

import (
	"errors"
	"fmt"

	"vsgm/internal/types"
)

// Level selects which layer of the inheritance hierarchy the end-point runs.
type Level int

const (
	// LevelWV runs only the WV_RFIFO parent automaton (Figure 9):
	// within-view reliable FIFO multicast, no synchronization round.
	LevelWV Level = iota + 1

	// LevelVS runs VS_RFIFO+TS (Figure 10): Virtual Synchrony and
	// Transitional Sets, without Self Delivery (clients are never blocked).
	LevelVS

	// LevelGCS runs the complete GCS automaton (Figure 11): Virtual
	// Synchrony, Transitional Sets, and Self Delivery with client blocking.
	LevelGCS
)

// String names the level after the paper's automata.
func (l Level) String() string {
	switch l {
	case LevelWV:
		return "WV_RFIFO"
	case LevelVS:
		return "VS_RFIFO+TS"
	case LevelGCS:
		return "GCS"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// BlockStatus is the Self Delivery layer's client-blocking state.
type BlockStatus int

const (
	// Unblocked: the client may send.
	Unblocked BlockStatus = iota + 1
	// Requested: a block() request has been issued and not yet acknowledged.
	Requested
	// Blocked: the client acknowledged with block_ok and must not send.
	Blocked
)

// String renders the status.
func (s BlockStatus) String() string {
	switch s {
	case Unblocked:
		return "unblocked"
	case Requested:
		return "requested"
	case Blocked:
		return "blocked"
	default:
		return fmt.Sprintf("block_status(%d)", int(s))
	}
}

// ErrBlocked is returned by Send while the client is blocked: the abstract
// client automaton (Figure 12) requires the application to refrain from
// sending between block_ok and the next view.
var ErrBlocked = errors.New("gcs: client is blocked during view change")

// ErrCrashed is returned by Send after Crash and before Recover.
var ErrCrashed = errors.New("gcs: end-point has crashed")

// Transport is the sender-side interface to the CO_RFIFO substrate
// (corfifo.Handle satisfies it).
type Transport interface {
	// Send multicasts m to dests, appending it to the FIFO channel toward
	// each destination.
	Send(dests []types.ProcID, m types.WireMsg)
	// SetReliable declares the set of end-points to which gap-free FIFO
	// connectivity must be maintained.
	SetReliable(set types.ProcSet)
}

// Config parameterizes an end-point.
type Config struct {
	// ID is the process identifier; required.
	ID types.ProcID

	// Transport is the CO_RFIFO handle; required.
	Transport Transport

	// Level selects the automaton layer; defaults to LevelGCS.
	Level Level

	// Forwarding selects the forwarding-strategy predicate of Section
	// 5.2.2; defaults to the simple strategy. Ignored at LevelWV.
	Forwarding ForwardingStrategy

	// AutoBlock makes the end-point act as its own blocking client: block
	// requests are acknowledged immediately (a BlockEvent is still emitted
	// for observability). Applications that manage blocking themselves
	// leave it false and call BlockOK.
	AutoBlock bool

	// SmallSync enables the Section 5.2.4 optimization: end-points in
	// start_change.set but outside the current view receive a small,
	// cut-less synchronization message meaning "I am not in your
	// transitional set".
	SmallSync bool

	// RetainOldBuffers disables the garbage collection of message buffers
	// from superseded views when a new view is installed. The paper's
	// abstract automata never discard; real implementations do (Section
	// 5.1). Tests use this to inspect historical buffers.
	RetainOldBuffers bool

	// MsgIDBase offsets the identifiers stamped on this end-point's
	// application messages so that IDs are globally unique across a
	// cluster (purely diagnostic; the algorithm identifies messages by
	// (sender, view, index)).
	MsgIDBase int64

	// OnSend observes each accepted Send synchronously, after the message
	// is assigned its identifier and appended to the sender's stream but
	// before any resulting transmission. Cross-process trace collectors
	// need this pre-wire ordering: an observer notified after Send returns
	// can lose the race against a fast peer's delivery report. Runs on the
	// Send caller's goroutine; must not call back into the Endpoint.
	OnSend func(types.AppMsg)

	// AckInterval enables within-view garbage collection: after every
	// AckInterval deliveries the end-point multicasts a stability
	// acknowledgment (its per-sender delivered counts), and message slots
	// acknowledged by every view member are collected. 0 disables acks;
	// buffers are then only reclaimed at view changes (Section 5.1).
	AckInterval int

	// HierarchyGroupSize enables the two-tier synchronization hierarchy of
	// Section 9's future work: members send their synchronization message
	// only to a designated group leader, and leaders aggregate and exchange
	// bundles. Values ≤ 1 disable the hierarchy (flat all-to-all syncs).
	// When enabled it takes precedence over SmallSync for sync routing.
	HierarchyGroupSize int

	// Trace observes the end-point's reconfiguration milestones
	// (start_change, sync send/receive, view installation). Optional;
	// callbacks run synchronously inside the automaton and must not call
	// back into the Endpoint.
	Trace ProtocolTrace
}

// Endpoint is the GCS end-point automaton state (Figures 9-11). It is not
// safe for concurrent use; drive it from one goroutine (the simulator's
// event loop, or a live runtime that serializes inputs).
type Endpoint struct {
	id             types.ProcID
	level          Level
	transport      Transport
	fwd            ForwardingStrategy
	autoBlock      bool
	smallSync      bool
	retainOld      bool
	ackInterval    int
	hierarchyGroup int
	onSend         func(types.AppMsg)
	trace          ProtocolTrace

	// WV_RFIFO state (Figure 9).
	msgs      bufferMap
	lastSent  int
	lastRcvd  map[types.ProcID]int
	lastDlvrd map[types.ProcID]int

	currentView types.View
	mbrshpView  types.View
	viewMsg     map[types.ProcID]types.View
	reliableSet types.ProcSet

	// Caches derived from currentView, refreshed whenever it changes:
	// the canonical view key, the sorted member list, and the sorted
	// members-without-self destination list.
	curKey     string
	curMembers []types.ProcID
	curOthers  []types.ProcID
	curBufs    map[types.ProcID]*msgBuf

	// limits caches the Figure 10 delivery restriction (nil when delivery
	// is unrestricted); limitsValid is cleared by every input that can
	// change it. fwdDirty marks that forwarding plans may have changed
	// (they depend only on synchronization state, not on data traffic).
	limits      types.Cut
	limitsValid bool
	fwdDirty    bool

	// VS_RFIFO+TS state extension (Figure 10).
	startChange *types.StartChange
	syncMsgs    map[types.ProcID]map[types.StartChangeID]*types.SyncMsg
	forwarded   map[forwardKey]struct{}

	// ownSync remembers the last synchronization message this end-point
	// committed to (cid, view, cut). The committed cut is binding, so a
	// watchdog resend (ResendSync) and probe answers must replay exactly
	// these values, never recompute them.
	ownSync struct {
		valid bool
		cid   types.StartChangeID
		view  types.View
		cut   types.Cut
		trace uint64
	}

	// GCS state extension (Figure 11).
	blockStatus BlockStatus

	// Stability tracking for within-view garbage collection.
	ackCounts map[types.ProcID]types.Cut
	sinceAck  int

	// Two-tier hierarchy aggregation state (leaders only). hBaseline
	// snapshots, at each view installation, the highest sync cid seen per
	// member; the bundling gate only counts syncs fresher than it.
	hPending  []hPendingEntry
	hSent     map[hEntryKey]struct{}
	hBaseline map[types.ProcID]types.StartChangeID

	crashed bool

	nextMsgID int64
	pending   []Event

	// Counters consumed by experiments.
	viewsInstalled  int64
	msgsDelivered   int64
	forwardsPlanned int64
}

type forwardKey struct {
	dest    types.ProcID
	origin  types.ProcID
	viewKey string
	index   int
}

// NewEndpoint constructs an end-point in its initial singleton view v_p.
func NewEndpoint(cfg Config) (*Endpoint, error) {
	if cfg.ID == "" {
		return nil, errors.New("gcs: config requires an ID")
	}
	if cfg.Transport == nil {
		return nil, errors.New("gcs: config requires a Transport")
	}
	if cfg.Level == 0 {
		cfg.Level = LevelGCS
	}
	if cfg.Forwarding == nil {
		cfg.Forwarding = NewSimpleForwarding()
	}
	e := &Endpoint{
		id:             cfg.ID,
		level:          cfg.Level,
		transport:      cfg.Transport,
		fwd:            cfg.Forwarding,
		autoBlock:      cfg.AutoBlock,
		smallSync:      cfg.SmallSync,
		retainOld:      cfg.RetainOldBuffers,
		ackInterval:    cfg.AckInterval,
		hierarchyGroup: cfg.HierarchyGroupSize,
		onSend:         cfg.OnSend,
		trace:          cfg.Trace,
		nextMsgID:      cfg.MsgIDBase,
	}
	e.reset()
	return e, nil
}

// reset restores the initial automaton state (also the Section 8 recovery
// semantics: recovered end-points restart from initial state under their
// original identity).
func (e *Endpoint) reset() {
	e.msgs = make(bufferMap)
	e.lastSent = 0
	e.lastRcvd = make(map[types.ProcID]int)
	e.lastDlvrd = make(map[types.ProcID]int)
	e.setCurrentView(types.InitialView(e.id))
	e.mbrshpView = types.InitialView(e.id)
	e.viewMsg = map[types.ProcID]types.View{e.id: types.InitialView(e.id)}
	e.reliableSet = types.NewProcSet(e.id)
	e.startChange = nil
	e.ownSync.valid = false
	e.syncMsgs = make(map[types.ProcID]map[types.StartChangeID]*types.SyncMsg)
	e.forwarded = make(map[forwardKey]struct{})
	e.blockStatus = Unblocked
	e.ackCounts = make(map[types.ProcID]types.Cut)
	e.sinceAck = 0
	e.hPending = nil
	e.hSent = make(map[hEntryKey]struct{})
	e.hBaseline = make(map[types.ProcID]types.StartChangeID)
}

// ID returns the end-point's process identifier.
func (e *Endpoint) ID() types.ProcID { return e.id }

// Level returns the configured automaton level.
func (e *Endpoint) Level() Level { return e.level }

// CurrentView returns the view most recently delivered to the application
// (or the initial singleton view).
func (e *Endpoint) CurrentView() types.View { return e.currentView.Clone() }

// MembershipView returns the latest view received from the membership
// service (which may not have been delivered to the application yet).
func (e *Endpoint) MembershipView() types.View { return e.mbrshpView.Clone() }

// PendingStartChange returns the outstanding start_change, if any.
func (e *Endpoint) PendingStartChange() (types.StartChange, bool) {
	if e.startChange == nil {
		return types.StartChange{}, false
	}
	return e.startChange.Clone(), true
}

// BlockStatus returns the Self Delivery layer's blocking state.
func (e *Endpoint) BlockStatus() BlockStatus { return e.blockStatus }

// Crashed reports whether the end-point is currently crashed.
func (e *Endpoint) Crashed() bool { return e.crashed }

// ViewsInstalled returns the number of views delivered to the application.
func (e *Endpoint) ViewsInstalled() int64 { return e.viewsInstalled }

// MessagesDelivered returns the number of application messages delivered.
func (e *Endpoint) MessagesDelivered() int64 { return e.msgsDelivered }

// ForwardsSent returns the number of forwarded message copies this end-point
// has sent (one per destination).
func (e *Endpoint) ForwardsSent() int64 { return e.forwardsPlanned }

// LastDelivered returns last_dlvrd[q]: the index of the last message from q
// delivered to the application in the current view.
func (e *Endpoint) LastDelivered(q types.ProcID) int { return e.lastDlvrd[q] }

// BufferedMessages returns the number of application messages currently held
// in the current view's buffers (after any garbage collection).
func (e *Endpoint) BufferedMessages() int {
	n := 0
	for _, q := range e.curMembers {
		n += e.curBuf(q).live()
	}
	return n
}

// BufferedBytes returns the payload bytes resident across every message
// buffer (all senders, all views awaiting garbage collection) — the
// automaton's share of a node's memory budget.
func (e *Endpoint) BufferedBytes() int64 {
	var n int64
	for _, row := range e.msgs {
		for _, b := range row {
			n += b.bytes
		}
	}
	return n
}

// CurrentOthers returns the current view's members excluding this process,
// sorted. The slice is shared with the endpoint and replaced (never
// mutated) on view installation: callers may hold a snapshot but must not
// modify it.
func (e *Endpoint) CurrentOthers() []types.ProcID { return e.curOthers }

// TakeEvents drains and returns the queued application events in order.
func (e *Endpoint) TakeEvents() []Event {
	evs := e.pending
	e.pending = nil
	return evs
}

// Send is the input action send_p(m): the application multicasts payload to
// the members of the current view. The message is appended to the
// end-point's own stream and will be self-delivered only after it has been
// sent to the other view members.
func (e *Endpoint) Send(payload []byte) (types.AppMsg, error) {
	if e.crashed {
		return types.AppMsg{}, ErrCrashed
	}
	if e.level == LevelGCS && e.blockStatus == Blocked {
		return types.AppMsg{}, ErrBlocked
	}
	e.nextMsgID++
	// set copies the payload on store; return (and report) the stored copy
	// so the caller may immediately reuse its buffer.
	m := types.AppMsg{ID: e.nextMsgID, Payload: payload}
	buf := e.curBuf(e.id)
	buf.set(buf.lastIndex()+1, m)
	if stored, ok := buf.get(buf.lastIndex()); ok {
		m = stored
	}
	if e.onSend != nil {
		e.onSend(m)
	}
	e.step()
	return m, nil
}

// BlockOK is the input action block_ok_p(): the application acknowledges a
// block request.
func (e *Endpoint) BlockOK() {
	if e.crashed || e.blockStatus != Requested {
		return
	}
	e.blockStatus = Blocked
	e.step()
}

// HandleStartChange is the input action mbrshp.start_change_p(id, set).
func (e *Endpoint) HandleStartChange(sc types.StartChange) {
	if e.crashed {
		return
	}
	cp := sc.Clone()
	e.startChange = &cp
	e.limitsValid = false
	e.fwdDirty = true
	if e.trace != nil {
		e.trace.StartChange(cp)
	}
	e.hRequeue()
	e.step()
}

// HandleView is the input action mbrshp.view_p(v).
func (e *Endpoint) HandleView(v types.View) {
	if e.crashed {
		return
	}
	e.mbrshpView = v.Clone()
	e.limitsValid = false
	e.fwdDirty = true
	e.step()
}

// HandleMessage is the input action co_rfifo.deliver_{q,p}(m), dispatching
// on the message tag (Figures 9 and 10).
func (e *Endpoint) HandleMessage(from types.ProcID, m types.WireMsg) {
	if e.crashed {
		return
	}
	switch m.Kind {
	case types.KindView:
		e.viewMsg[from] = m.View.Clone()
		e.lastRcvd[from] = 0
	case types.KindApp:
		vm, ok := e.viewMsg[from]
		if !ok {
			vm = types.InitialView(from)
		}
		e.msgs.buf(from, vm.Key()).set(e.lastRcvd[from]+1, m.App)
		e.lastRcvd[from]++
	case types.KindFwd:
		e.msgs.buf(m.Origin, m.View.Key()).set(m.Index, m.App)
	case types.KindAck:
		if e.ackInterval > 0 {
			e.ackCounts[from] = m.Cut.Clone()
			e.collectStable()
		}
	case types.KindSync:
		if e.level == LevelWV {
			return
		}
		view := m.View
		if m.ElideView {
			// Section 5.2.4 second optimization: the sender elided its view
			// because its view_msg precedes this sync on our FIFO channel.
			vm, ok := e.viewMsg[from]
			if !ok {
				vm = types.InitialView(from)
			}
			view = vm
		}
		e.storeSyncEntry(from, m.CID, view, m.Cut, m.Small)
		if e.trace != nil {
			e.trace.SyncReceived(from, m.CID, m.Trace)
		}
		if e.hierarchyGroup > 1 {
			// A local member routed its sync to us as its leader; queue it
			// for aggregation and redistribution.
			e.hQueue(types.SyncEntry{
				From: from, CID: m.CID, View: view.Clone(), Cut: m.Cut.Clone(), Small: m.Small,
			}, false)
		}
		if m.Probe {
			e.answerSyncProbe(from)
		}
	case types.KindSyncBundle:
		if e.level == LevelWV {
			return
		}
		for _, entry := range m.Bundle {
			if entry.From == e.id {
				continue
			}
			e.storeSyncEntry(entry.From, entry.CID, entry.View, entry.Cut, entry.Small)
			if e.trace != nil {
				// Bundle entries carry no trace tag; the span still counts
				// the receipt.
				e.trace.SyncReceived(entry.From, entry.CID, 0)
			}
			if e.hierarchyGroup > 1 {
				e.hQueue(entry, true)
			}
		}
	}
	e.step()
}

// Crash models crash_p() (Section 8): all locally controlled actions and
// input effects are disabled until Recover.
func (e *Endpoint) Crash() {
	e.crashed = true
	e.pending = nil
}

// Recover models recover_p() (Section 8): the end-point restarts with all
// state variables at their initial values — no stable storage is used — and
// continues under its original identity.
func (e *Endpoint) Recover() {
	if !e.crashed {
		return
	}
	e.crashed = false
	e.reset()
	e.transport.SetReliable(e.reliableSet.Clone())
	e.step()
}

func (e *Endpoint) emit(ev Event) { e.pending = append(e.pending, ev) }

// setCurrentView installs v as the current view and refreshes the derived
// caches.
func (e *Endpoint) setCurrentView(v types.View) {
	e.currentView = v
	e.curKey = v.Key()
	e.curMembers = v.Members.Sorted()
	others := e.curMembers[:0:0]
	for _, q := range e.curMembers {
		if q != e.id {
			others = append(others, q)
		}
	}
	e.curOthers = others
	e.curBufs = make(map[types.ProcID]*msgBuf, len(e.curMembers))
	e.limitsValid = false
}

// curBuf returns msgs[q][currentView], memoized per view.
func (e *Endpoint) curBuf(q types.ProcID) *msgBuf {
	if b, ok := e.curBufs[q]; ok {
		return b
	}
	b := e.msgs.buf(q, e.curKey)
	e.curBufs[q] = b
	return b
}
