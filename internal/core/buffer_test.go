package core

import (
	"testing"

	"vsgm/internal/types"
)

func TestMsgBufSetGet(t *testing.T) {
	var b msgBuf
	b.set(1, types.AppMsg{ID: 1})
	b.set(3, types.AppMsg{ID: 3}) // hole at 2

	if m, ok := b.get(1); !ok || m.ID != 1 {
		t.Fatal("index 1 missing")
	}
	if _, ok := b.get(2); ok {
		t.Fatal("hole reported present")
	}
	if m, ok := b.get(3); !ok || m.ID != 3 {
		t.Fatal("index 3 missing")
	}
	if _, ok := b.get(0); ok {
		t.Fatal("index 0 must be invalid (1-based)")
	}
	if _, ok := b.get(4); ok {
		t.Fatal("out of range reported present")
	}
}

func TestMsgBufSetIsIdempotent(t *testing.T) {
	var b msgBuf
	b.set(1, types.AppMsg{ID: 1})
	b.set(1, types.AppMsg{ID: 99}) // re-store keeps the original (Invariant 6.6)
	if m, _ := b.get(1); m.ID != 1 {
		t.Fatalf("re-store replaced the original: id = %d", m.ID)
	}
}

func TestMsgBufLongestPrefixAndLastIndex(t *testing.T) {
	var b msgBuf
	if b.longestPrefix() != 0 || b.lastIndex() != 0 {
		t.Fatal("empty buffer not zero")
	}
	b.set(1, types.AppMsg{ID: 1})
	b.set(2, types.AppMsg{ID: 2})
	b.set(4, types.AppMsg{ID: 4})
	if got := b.longestPrefix(); got != 2 {
		t.Fatalf("longest prefix = %d, want 2", got)
	}
	if got := b.lastIndex(); got != 4 {
		t.Fatalf("last index = %d, want 4", got)
	}
	b.set(3, types.AppMsg{ID: 3}) // a forwarded copy fills the hole
	if got := b.longestPrefix(); got != 4 {
		t.Fatalf("after filling the hole, longest prefix = %d, want 4", got)
	}
}

func TestMsgBufNilReceiver(t *testing.T) {
	var b *msgBuf
	if b.longestPrefix() != 0 || b.lastIndex() != 0 {
		t.Fatal("nil buffer must behave as empty")
	}
	if _, ok := b.get(1); ok {
		t.Fatal("nil buffer reported a message")
	}
}

func TestBufferMapDropExcept(t *testing.T) {
	m := make(bufferMap)
	m.buf("a", "v1").set(1, types.AppMsg{ID: 1})
	m.buf("a", "v2").set(1, types.AppMsg{ID: 2})
	m.buf("b", "v1").set(1, types.AppMsg{ID: 3})

	m.dropExcept("v2")
	if m.peek("a", "v1") != nil || m.peek("b", "v1") != nil {
		t.Fatal("old-view buffers survived garbage collection")
	}
	if m.peek("a", "v2") == nil {
		t.Fatal("current-view buffer was dropped")
	}
}
