package core

import (
	"testing"

	"vsgm/internal/types"
)

func TestMsgBufSetGet(t *testing.T) {
	var b msgBuf
	b.set(1, types.AppMsg{ID: 1})
	b.set(3, types.AppMsg{ID: 3}) // hole at 2

	if m, ok := b.get(1); !ok || m.ID != 1 {
		t.Fatal("index 1 missing")
	}
	if _, ok := b.get(2); ok {
		t.Fatal("hole reported present")
	}
	if m, ok := b.get(3); !ok || m.ID != 3 {
		t.Fatal("index 3 missing")
	}
	if _, ok := b.get(0); ok {
		t.Fatal("index 0 must be invalid (1-based)")
	}
	if _, ok := b.get(4); ok {
		t.Fatal("out of range reported present")
	}
}

func TestMsgBufSetIsIdempotent(t *testing.T) {
	var b msgBuf
	b.set(1, types.AppMsg{ID: 1})
	b.set(1, types.AppMsg{ID: 99}) // re-store keeps the original (Invariant 6.6)
	if m, _ := b.get(1); m.ID != 1 {
		t.Fatalf("re-store replaced the original: id = %d", m.ID)
	}
}

func TestMsgBufLongestPrefixAndLastIndex(t *testing.T) {
	var b msgBuf
	if b.longestPrefix() != 0 || b.lastIndex() != 0 {
		t.Fatal("empty buffer not zero")
	}
	b.set(1, types.AppMsg{ID: 1})
	b.set(2, types.AppMsg{ID: 2})
	b.set(4, types.AppMsg{ID: 4})
	if got := b.longestPrefix(); got != 2 {
		t.Fatalf("longest prefix = %d, want 2", got)
	}
	if got := b.lastIndex(); got != 4 {
		t.Fatalf("last index = %d, want 4", got)
	}
	b.set(3, types.AppMsg{ID: 3}) // a forwarded copy fills the hole
	if got := b.longestPrefix(); got != 4 {
		t.Fatalf("after filling the hole, longest prefix = %d, want 4", got)
	}
}

func TestMsgBufNilReceiver(t *testing.T) {
	var b *msgBuf
	if b.longestPrefix() != 0 || b.lastIndex() != 0 {
		t.Fatal("nil buffer must behave as empty")
	}
	if _, ok := b.get(1); ok {
		t.Fatal("nil buffer reported a message")
	}
}

func TestBufferMapDropExcept(t *testing.T) {
	m := make(bufferMap)
	m.buf("a", "v1").set(1, types.AppMsg{ID: 1})
	m.buf("a", "v2").set(1, types.AppMsg{ID: 2})
	m.buf("b", "v1").set(1, types.AppMsg{ID: 3})

	m.dropExcept("v2")
	if m.peek("a", "v1") != nil || m.peek("b", "v1") != nil {
		t.Fatal("old-view buffers survived garbage collection")
	}
	if m.peek("a", "v2") == nil {
		t.Fatal("current-view buffer was dropped")
	}
}

// TestMsgBufBytesAccounting pins the live-byte counter the memory budget
// reads: set adds each stored payload once (idempotent re-stores and
// below-base stores add nothing), and collect subtracts exactly the dropped
// prefix — so bytes always equals the payload total of live entries.
func TestMsgBufBytesAccounting(t *testing.T) {
	b := &msgBuf{}
	pay := func(n int) types.AppMsg { return types.AppMsg{ID: int64(n), Payload: make([]byte, n)} }
	b.set(1, pay(10))
	b.set(2, pay(20))
	b.set(4, pay(40)) // hole at 3
	if b.bytes != 70 {
		t.Fatalf("bytes = %d, want 70", b.bytes)
	}
	b.set(2, pay(999)) // idempotent re-store keeps the original
	if b.bytes != 70 {
		t.Fatalf("bytes after re-store = %d, want 70", b.bytes)
	}
	b.collect(2)
	if b.bytes != 40 {
		t.Fatalf("bytes after collect(2) = %d, want 40", b.bytes)
	}
	b.set(1, pay(10)) // at or below base: dropped, not counted
	if b.bytes != 40 {
		t.Fatalf("bytes after below-base store = %d, want 40", b.bytes)
	}
	b.set(3, pay(30)) // forwarded copy fills the hole
	if b.bytes != 70 {
		t.Fatalf("bytes after filling hole = %d, want 70", b.bytes)
	}
	b.collect(4)
	if b.bytes != 0 {
		t.Fatalf("bytes after full collect = %d, want 0", b.bytes)
	}
}
