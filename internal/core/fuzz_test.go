package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vsgm/internal/types"
)

// TestEndpointRobustAgainstArbitraryWireInput feeds an end-point random —
// including protocol-nonsensical — wire messages and checks that it never
// panics, never emits malformed events, and keeps its local invariants:
// deliveries never outrun received prefixes, the current view always
// contains the end-point, and counters stay non-negative. (Correct protocol
// behavior under hostile input is not claimed by the paper; not crashing
// is the engineering bar.)
func TestEndpointRobustAgainstArbitraryWireInput(t *testing.T) {
	peers := []types.ProcID{"q", "r", "s"}
	views := []types.View{
		types.InitialView("p"),
		types.InitialView("q"),
		types.NewView(1, types.NewProcSet("p", "q"),
			map[types.ProcID]types.StartChangeID{"p": 1, "q": 1}),
		types.NewView(2, types.NewProcSet("p", "q", "r"),
			map[types.ProcID]types.StartChangeID{"p": 2, "q": 2, "r": 1}),
	}

	randomMsg := func(rng *rand.Rand) types.WireMsg {
		v := views[rng.Intn(len(views))]
		switch rng.Intn(5) {
		case 0:
			return types.WireMsg{Kind: types.KindView, View: v}
		case 1:
			return types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: rng.Int63n(100)}}
		case 2:
			return types.WireMsg{
				Kind:   types.KindFwd,
				App:    types.AppMsg{ID: rng.Int63n(100)},
				Origin: peers[rng.Intn(len(peers))],
				View:   v,
				Index:  rng.Intn(5) - 1, // including invalid indices
			}
		case 3:
			cut := types.Cut{}
			for _, q := range peers {
				if rng.Intn(2) == 0 {
					cut[q] = rng.Intn(5)
				}
			}
			return types.WireMsg{
				Kind:      types.KindSync,
				CID:       types.StartChangeID(rng.Intn(4)),
				View:      v,
				Cut:       cut,
				Small:     rng.Intn(4) == 0,
				ElideView: rng.Intn(4) == 0,
			}
		default:
			return types.WireMsg{Kind: types.KindAck, Cut: types.Cut{"p": rng.Intn(5)}}
		}
	}

	scenario := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ep, _ := newTestEndpoint(t, "p", func(c *Config) {
			c.AckInterval = rng.Intn(3)
			c.SmallSync = rng.Intn(2) == 0
		})
		for i := 0; i < 120; i++ {
			switch rng.Intn(8) {
			case 0:
				ep.HandleStartChange(types.StartChange{
					ID:  types.StartChangeID(1 + rng.Intn(4)),
					Set: types.NewProcSet("p", peers[rng.Intn(len(peers))]),
				})
			case 1:
				ep.HandleView(views[rng.Intn(len(views))])
			case 2:
				if _, err := ep.Send([]byte("x")); err != nil &&
					err != ErrBlocked && err != ErrCrashed {
					return false
				}
			default:
				ep.HandleMessage(peers[rng.Intn(len(peers))], randomMsg(rng))
			}

			// Local invariants after every input.
			if !ep.CurrentView().Contains("p") {
				t.Logf("seed %d: current view lost self-inclusion", seed)
				return false
			}
			for _, ev := range ep.TakeEvents() {
				switch e := ev.(type) {
				case DeliverEvent:
					if e.Sender == "" {
						t.Logf("seed %d: delivery without sender", seed)
						return false
					}
				case ViewEvent:
					if !e.View.Contains("p") {
						t.Logf("seed %d: delivered view without self", seed)
						return false
					}
				}
			}
			if ep.MessagesDelivered() < 0 || ep.BufferedMessages() < 0 {
				return false
			}
		}
		return true
	}

	if err := quick.Check(scenario, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
