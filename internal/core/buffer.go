package core

import "vsgm/internal/types"

// msgBuf is one msgs[q][v] sequence: a 1-indexed, possibly sparse buffer of
// application messages. Original messages from the live FIFO stream arrive
// contiguously; forwarded messages may fill arbitrary holes. Indices up to
// base have become stable (acknowledged by every view member) and their
// storage is garbage-collected; logically they still count as present for
// prefix computations.
type msgBuf struct {
	base  int             // indices 1..base are stable and collected
	items []*types.AppMsg // items[i-1-base] holds index i
	bytes int64           // payload bytes held live, maintained by set/collect
}

// set stores m at 1-based index i, growing the buffer as needed. Re-storing
// an index is idempotent by Invariant 6.6 (a forwarded copy equals the
// original), so the existing value is kept; indices at or below base are
// stable everywhere and dropped.
//
// The payload is copied on store: callers may hand in borrowed memory (the
// zero-copy receive path delivers payloads aliasing pooled network buffers
// that are recycled once the handler returns), and this is the single point
// where bytes cross into state the protocol retains.
//
// Growth is one step, not an element-at-a-time nil append: a reslice when
// the capacity already covers index i (the backing array beyond len is
// all-nil — it is freshly allocated here or by collect, and nothing else
// writes past len), otherwise a single doubling allocation.
func (b *msgBuf) set(i int, m types.AppMsg) {
	if i <= b.base {
		return
	}
	if n := i - b.base; n > len(b.items) {
		if n <= cap(b.items) {
			b.items = b.items[:n]
		} else {
			grown := make([]*types.AppMsg, n, max(n, 2*cap(b.items)))
			copy(grown, b.items)
			b.items = grown
		}
	}
	if b.items[i-1-b.base] == nil {
		cp := m
		if len(m.Payload) > 0 {
			cp.Payload = append([]byte(nil), m.Payload...)
		}
		b.items[i-1-b.base] = &cp
		b.bytes += int64(len(m.Payload))
	}
}

// get returns the message at 1-based index i, if its storage is live.
func (b *msgBuf) get(i int) (types.AppMsg, bool) {
	if b == nil || i <= b.base || i > b.base+len(b.items) || b.items[i-1-b.base] == nil {
		return types.AppMsg{}, false
	}
	return *b.items[i-1-b.base], true
}

// longestPrefix returns the length of the gap-free prefix: the largest k such
// that indices 1..k are all (logically) present (LongestPrefixOf in Figure
// 10). Collected stable indices count as present.
func (b *msgBuf) longestPrefix() int {
	if b == nil {
		return 0
	}
	for i, m := range b.items {
		if m == nil {
			return b.base + i
		}
	}
	return b.base + len(b.items)
}

// lastIndex returns the highest (logically) populated index (LastIndexOf in
// Figure 7). For an end-point's own buffer the sequence is contiguous, so
// lastIndex and longestPrefix coincide.
func (b *msgBuf) lastIndex() int {
	if b == nil {
		return 0
	}
	for i := len(b.items); i > 0; i-- {
		if b.items[i-1] != nil {
			return b.base + i
		}
	}
	return b.base
}

// live returns the number of messages currently held in storage.
func (b *msgBuf) live() int {
	if b == nil {
		return 0
	}
	n := 0
	for _, m := range b.items {
		if m != nil {
			n++
		}
	}
	return n
}

// collect garbage-collects every index at or below stable. Stability implies
// the prefix was delivered locally, so the dropped prefix is contiguous.
func (b *msgBuf) collect(stable int) {
	if b == nil || stable <= b.base {
		return
	}
	drop := stable - b.base
	if drop > len(b.items) {
		drop = len(b.items)
	}
	for _, m := range b.items[:drop] {
		if m != nil {
			b.bytes -= int64(len(m.Payload))
		}
	}
	b.items = append(b.items[:0:0], b.items[drop:]...)
	b.base += drop
}

// bufferMap holds msgs[q][v] for all senders q and views v, keyed by the
// canonical view key (views are equal only as whole triples).
type bufferMap map[types.ProcID]map[string]*msgBuf

func (m bufferMap) buf(q types.ProcID, viewKey string) *msgBuf {
	row := m[q]
	if row == nil {
		row = make(map[string]*msgBuf)
		m[q] = row
	}
	b := row[viewKey]
	if b == nil {
		b = &msgBuf{}
		row[viewKey] = b
	}
	return b
}

// peek returns the buffer without creating it.
func (m bufferMap) peek(q types.ProcID, viewKey string) *msgBuf {
	return m[q][viewKey]
}

// dropExcept discards every buffer whose view key differs from keep; the
// garbage-collection step an implementation performs when it installs a new
// view (Section 5.1, closing remark).
func (m bufferMap) dropExcept(keep string) {
	for q, row := range m {
		for k := range row {
			if k != keep {
				delete(row, k)
			}
		}
		if len(row) == 0 {
			delete(m, q)
		}
	}
}
