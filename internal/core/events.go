package core

import (
	"fmt"

	"vsgm/internal/types"
)

// Event is an output action of the GCS end-point directed at its application
// client: message delivery, view delivery (with transitional set), or a
// block request.
type Event interface {
	isEvent()
	String() string
}

// DeliverEvent is deliver_p(q, m): message Msg from Sender is delivered to
// the application, in view InView (the delivering end-point's current view,
// which — per the within-view property — is also the view the message was
// sent in).
type DeliverEvent struct {
	Sender types.ProcID
	Msg    types.AppMsg
	InView types.View
}

func (DeliverEvent) isEvent() {}

func (e DeliverEvent) String() string {
	return fmt.Sprintf("deliver(from=%s #%d in %s)", e.Sender, e.Msg.ID, e.InView)
}

// ViewEvent is view_p(v, T): the application learns the new view View
// together with its transitional set (Property 4.1).
type ViewEvent struct {
	View            types.View
	TransitionalSet types.ProcSet
}

func (ViewEvent) isEvent() {}

func (e ViewEvent) String() string {
	return fmt.Sprintf("view(%s T=%s)", e.View, e.TransitionalSet)
}

// BlockEvent is block_p(): the end-point asks the application to stop
// sending until the next view is delivered (Section 5.3). The application
// must respond with Endpoint.BlockOK and then refrain from sending; a
// blocked Send returns ErrBlocked.
type BlockEvent struct{}

func (BlockEvent) isEvent() {}

func (BlockEvent) String() string { return "block()" }
