package core

import (
	"reflect"
	"testing"

	"vsgm/internal/types"
)

// forwardingRig builds an end-point mid-reconfiguration: p moved into the
// shared view {p, q, r, x}, x's stream reached p (and, per the installed
// sync messages, q) but not r, and the membership is removing x. The rig
// lets the strategy tests inspect Plan output directly.
func forwardingRig(t *testing.T, strategy ForwardingStrategy) (*Endpoint, types.View) {
	t.Helper()
	ep, _ := newTestEndpoint(t, "p", func(c *Config) { c.Forwarding = strategy })

	// Install the shared view {p, q, r, x} (from p's singleton view, only
	// p's own sync is needed).
	members := types.NewProcSet("p", "q", "r", "x")
	sid := map[types.ProcID]types.StartChangeID{"p": 1, "q": 1, "r": 1, "x": 1}
	v1 := types.NewView(1, members, sid)
	ep.HandleStartChange(types.StartChange{ID: 1, Set: members})
	ep.HandleView(v1)
	if !ep.CurrentView().Equal(v1) {
		t.Fatalf("setup: current view = %s", ep.CurrentView())
	}

	// x streams two messages to p.
	ep.HandleMessage("x", types.WireMsg{Kind: types.KindView, View: v1})
	ep.HandleMessage("x", types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: 101}})
	ep.HandleMessage("x", types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: 102}})
	ep.TakeEvents()
	return ep, v1
}

// startRemovalOfX begins the change removing x: survivors {p, q, r}, with
// q's cut committing both of x's messages and r's cut committing none.
func startRemovalOfX(t *testing.T, ep *Endpoint, v1 types.View) types.View {
	t.Helper()
	survivors := types.NewProcSet("p", "q", "r")
	ep.HandleStartChange(types.StartChange{ID: 2, Set: survivors})
	v2 := types.NewView(2, survivors,
		map[types.ProcID]types.StartChangeID{"p": 2, "q": 2, "r": 2})
	ep.HandleView(v2)
	ep.HandleMessage("q", types.WireMsg{
		Kind: types.KindSync, CID: 2, View: v1,
		Cut: types.Cut{"p": 0, "q": 0, "r": 0, "x": 2},
	})
	ep.HandleMessage("r", types.WireMsg{
		Kind: types.KindSync, CID: 2, View: v1,
		Cut: types.Cut{"p": 0, "q": 0, "r": 0, "x": 0},
	})
	return v2
}

func plansByOrigin(plans []Forward) map[types.ProcID][]Forward {
	out := make(map[types.ProcID][]Forward)
	for _, f := range plans {
		out[f.Origin] = append(out[f.Origin], f)
	}
	return out
}

func TestSimpleForwardingSendsCopiesToEveryMissingPeer(t *testing.T) {
	ep, v1 := forwardingRig(t, NewSimpleForwarding())
	tr := ep.transport.(*fakeTransport)
	tr.sent = nil
	v2 := startRemovalOfX(t, ep, v1)

	// The step loop executes the forwarding plan before installing v2.
	fwds := tr.byKind(types.KindFwd)
	if len(fwds) != 2 {
		t.Fatalf("forwarded %d messages, want 2 (x's indices 1 and 2)", len(fwds))
	}
	for i, f := range fwds {
		if f.msg.Origin != "x" || f.msg.Index != i+1 {
			t.Errorf("forward %d = origin %s index %d, want x/%d", i, f.msg.Origin, f.msg.Index, i+1)
		}
		if !reflect.DeepEqual(f.dests, []types.ProcID{"r"}) {
			t.Errorf("forward %d dests = %v, want [r] (q already committed both)", i, f.dests)
		}
	}
	if !ep.CurrentView().Equal(v2) {
		t.Errorf("current view = %s, want %s (install follows forwarding)", ep.CurrentView(), v2)
	}
}

func TestMinCopiesForwardingElectsMinimumCommittedHolder(t *testing.T) {
	ep, v1 := forwardingRig(t, NewMinCopiesForwarding())
	tr := ep.transport.(*fakeTransport)
	tr.sent = nil
	startRemovalOfX(t, ep, v1)

	// p and q both committed x's messages; p is the minimum-id holder, so
	// p forwards both to r.
	fwds := tr.byKind(types.KindFwd)
	if len(fwds) != 2 {
		t.Fatalf("forwarded %d messages, want 2", len(fwds))
	}
	for _, f := range fwds {
		if f.msg.Origin != "x" || !reflect.DeepEqual(f.dests, []types.ProcID{"r"}) {
			t.Errorf("forward = origin %s dests %v, want x → [r]", f.msg.Origin, f.dests)
		}
	}
}

func TestMinCopiesNonMinimumHolderStaysSilent(t *testing.T) {
	// Same scenario viewed from q's side: q (not the minimum committed
	// holder — p is) must not forward anything.
	ep, _ := newTestEndpoint(t, "q", func(c *Config) { c.Forwarding = NewMinCopiesForwarding() })
	members := types.NewProcSet("p", "q", "r", "x")
	sid := map[types.ProcID]types.StartChangeID{"p": 1, "q": 1, "r": 1, "x": 1}
	v1 := types.NewView(1, members, sid)
	ep.HandleStartChange(types.StartChange{ID: 1, Set: members})
	ep.HandleView(v1)
	ep.HandleMessage("x", types.WireMsg{Kind: types.KindView, View: v1})
	ep.HandleMessage("x", types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: 101}})
	ep.HandleMessage("x", types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: 102}})
	ep.TakeEvents()

	tr := ep.transport.(*fakeTransport)
	tr.sent = nil
	survivors := types.NewProcSet("p", "q", "r")
	ep.HandleStartChange(types.StartChange{ID: 2, Set: survivors})
	v2 := types.NewView(2, survivors,
		map[types.ProcID]types.StartChangeID{"p": 2, "q": 2, "r": 2})
	ep.HandleView(v2)
	// p's cut also covers x's messages; r's does not.
	ep.HandleMessage("p", types.WireMsg{
		Kind: types.KindSync, CID: 2, View: v1,
		Cut: types.Cut{"p": 0, "q": 0, "r": 0, "x": 2},
	})
	ep.HandleMessage("r", types.WireMsg{
		Kind: types.KindSync, CID: 2, View: v1,
		Cut: types.Cut{"p": 0, "q": 0, "r": 0, "x": 0},
	})
	if fwds := tr.byKind(types.KindFwd); len(fwds) != 0 {
		t.Fatalf("q forwarded %d messages although p is the elected holder", len(fwds))
	}
}

func TestMinCopiesForwardingWaitsForMembershipView(t *testing.T) {
	ep, _ := forwardingRig(t, NewMinCopiesForwarding())
	// Start the change but deliver no membership view: the min-copies
	// strategy cannot know the transitional set yet and must plan nothing.
	ep.HandleStartChange(types.StartChange{ID: 2, Set: types.NewProcSet("p", "q", "r")})
	if plans := NewMinCopiesForwarding().Plan(ep); len(plans) != 0 {
		t.Fatalf("plans before the membership view = %v, want none", plans)
	}
}

func TestSimpleForwardingCanForwardBeforeMembershipView(t *testing.T) {
	ep, v1 := forwardingRig(t, NewSimpleForwarding())
	// The simple strategy forwards as soon as a peer's sync shows a gap,
	// even before the membership view arrives.
	ep.HandleStartChange(types.StartChange{ID: 2, Set: types.NewProcSet("p", "q", "r")})
	ep.HandleMessage("r", types.WireMsg{
		Kind: types.KindSync, CID: 2, View: v1,
		Cut: types.Cut{"p": 0, "q": 0, "r": 0, "x": 0},
	})
	plans := NewSimpleForwarding().Plan(ep)
	if len(plansByOrigin(plans)["x"]) != 2 {
		t.Fatalf("plans = %v, want x's two messages toward r", plans)
	}
}

func TestForwardingIgnoresPeersFromOtherViews(t *testing.T) {
	ep, _ := forwardingRig(t, NewSimpleForwarding())
	// A sync from a process whose previous view differs cannot make us
	// forward old-view messages to it.
	ep.HandleStartChange(types.StartChange{ID: 2, Set: types.NewProcSet("p", "q", "r", "z")})
	ep.HandleMessage("z", types.WireMsg{
		Kind: types.KindSync, CID: 2, View: types.InitialView("z"), Cut: types.Cut{"z": 0},
	})
	for _, f := range NewSimpleForwarding().Plan(ep) {
		for _, d := range f.Dests {
			if d == "z" {
				t.Fatalf("planned a forward to z, which moves from a different view: %v", f)
			}
		}
	}
}

func TestForwardingDeduplicatesPerDestination(t *testing.T) {
	ep, v1 := forwardingRig(t, NewSimpleForwarding())
	tr := ep.transport.(*fakeTransport)
	tr.sent = nil
	startRemovalOfX(t, ep, v1)

	// The step loop already executed the plan; count actual fwd sends.
	fwds := tr.byKind(types.KindFwd)
	if len(fwds) != 2 {
		t.Fatalf("forwarded %d messages, want 2 (indices 1 and 2 to r)", len(fwds))
	}
	// Re-trigger planning: nothing new may be sent (forwarded_set).
	ep.HandleMessage("r", types.WireMsg{
		Kind: types.KindSync, CID: 2, View: v1,
		Cut: types.Cut{"p": 0, "q": 0, "r": 0, "x": 0},
	})
	if got := len(tr.byKind(types.KindFwd)); got != 2 {
		t.Fatalf("duplicate forwards: %d sends after re-plan, want 2", got)
	}
}

func TestStrategyNames(t *testing.T) {
	if NewSimpleForwarding().Name() != "simple" {
		t.Error("simple name wrong")
	}
	if NewMinCopiesForwarding().Name() != "min-copies" {
		t.Error("min-copies name wrong")
	}
}
