package core

import (
	"reflect"
	"testing"

	"vsgm/internal/types"
)

func TestHierarchyGroups(t *testing.T) {
	set := types.NewProcSet("a", "b", "c", "d", "e")
	groupOf, leaders, groups := hierarchyGroups(set, 2)

	if !reflect.DeepEqual(leaders, []types.ProcID{"a", "c", "e"}) {
		t.Fatalf("leaders = %v", leaders)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	if !reflect.DeepEqual(groups[0], []types.ProcID{"a", "b"}) ||
		!reflect.DeepEqual(groups[1], []types.ProcID{"c", "d"}) ||
		!reflect.DeepEqual(groups[2], []types.ProcID{"e"}) {
		t.Fatalf("groups = %v", groups)
	}
	for p, idx := range map[types.ProcID]int{"a": 0, "b": 0, "c": 1, "d": 1, "e": 2} {
		if groupOf[p] != idx {
			t.Errorf("groupOf[%s] = %d, want %d", p, groupOf[p], idx)
		}
	}
}

func TestHierarchyForDisabledCases(t *testing.T) {
	ep, _ := newTestEndpoint(t, "p", nil) // hierarchy off by default
	if topo := ep.hierarchyFor(types.NewProcSet("p", "q", "r")); topo != nil {
		t.Fatal("topology computed with the hierarchy disabled")
	}
	ep2, _ := newTestEndpoint(t, "p", func(c *Config) { c.HierarchyGroupSize = 2 })
	if topo := ep2.hierarchyFor(types.NewProcSet("p", "q")); topo != nil {
		t.Fatal("trivial sets must not use the hierarchy")
	}
	if topo := ep2.hierarchyFor(types.NewProcSet("q", "r", "s")); topo != nil {
		t.Fatal("topology computed for a set not containing the end-point")
	}
	topo := ep2.hierarchyFor(types.NewProcSet("p", "q", "r", "s"))
	if topo == nil || !topo.isLead || topo.leader != "p" {
		t.Fatalf("topo = %+v, want p leading its group", topo)
	}
}

// fourMemberView builds a view over {p, q, r, s}.
func fourMemberView(id types.ViewID, cid types.StartChangeID) types.View {
	members := types.NewProcSet("p", "q", "r", "s")
	sid := make(map[types.ProcID]types.StartChangeID, 4)
	for m := range members {
		sid[m] = cid
	}
	return types.NewView(id, members, sid)
}

func TestHierarchyNonLeaderRoutesSyncToLeaderOnly(t *testing.T) {
	// q's leader in {p, q, r, s} with groups of 2 is p.
	ep, tr := newTestEndpoint(t, "q", func(c *Config) { c.HierarchyGroupSize = 2 })
	ep.HandleStartChange(types.StartChange{ID: 1, Set: types.NewProcSet("p", "q", "r", "s")})
	syncs := tr.byKind(types.KindSync)
	if len(syncs) != 1 {
		t.Fatalf("syncs = %d, want exactly 1 (to the leader)", len(syncs))
	}
	if !reflect.DeepEqual(syncs[0].dests, []types.ProcID{"p"}) {
		t.Fatalf("sync dests = %v, want [p]", syncs[0].dests)
	}
}

func TestHierarchyLeaderBundlesAfterLocalGroupSyncs(t *testing.T) {
	// p leads {p, q}; r leads {r, s}. p must not flush before q's sync
	// arrives (batching), then flush one bundle to r (leader) and q (local).
	ep, tr := newTestEndpoint(t, "p", func(c *Config) { c.HierarchyGroupSize = 2 })
	ep.HandleStartChange(types.StartChange{ID: 1, Set: types.NewProcSet("p", "q", "r", "s")})
	if got := len(tr.byKind(types.KindSyncBundle)); got != 0 {
		t.Fatalf("bundled before the local group synchronized (%d bundles)", got)
	}
	ep.HandleMessage("q", types.WireMsg{
		Kind: types.KindSync, CID: 1, View: types.InitialView("q"), Cut: types.Cut{"q": 0},
	})
	bundles := tr.byKind(types.KindSyncBundle)
	if len(bundles) != 2 { // same payload to other leaders and to locals
		t.Fatalf("bundles = %d, want 2 sends (leaders + locals)", len(bundles))
	}
	if len(bundles[0].msg.Bundle) != 2 {
		t.Fatalf("bundle entries = %d, want p's and q's syncs batched", len(bundles[0].msg.Bundle))
	}
}

func TestHierarchyGateOpensOnMembershipDecision(t *testing.T) {
	// Regression for a liveness bug: the batching gate must open once the
	// membership view answering our change arrives, even if a local member
	// never synchronized this era.
	ep, tr := newTestEndpoint(t, "p", func(c *Config) { c.HierarchyGroupSize = 2 })
	ep.HandleStartChange(types.StartChange{ID: 1, Set: types.NewProcSet("p", "q", "r", "s")})
	if got := len(tr.byKind(types.KindSyncBundle)); got != 0 {
		t.Fatal("premature bundle")
	}
	// The membership decides while q is still silent.
	ep.HandleView(fourMemberView(1, 1))
	if got := len(tr.byKind(types.KindSyncBundle)); got == 0 {
		t.Fatal("gate never opened after the membership decision")
	}
}

func TestHierarchyLeaderKeepsServingAfterInstall(t *testing.T) {
	// Regression for the second liveness bug: a leader that already
	// installed its view must keep redistributing late syncs that route
	// through it.
	ep, tr := newTestEndpoint(t, "p", func(c *Config) { c.HierarchyGroupSize = 2 })

	// p moves alone into the 4-member view (its old view is a singleton,
	// so only its own sync is needed) and installs immediately.
	ep.HandleStartChange(types.StartChange{ID: 1, Set: types.NewProcSet("p", "q", "r", "s")})
	v := fourMemberView(1, 1)
	ep.HandleView(v)
	if !ep.CurrentView().Equal(v) {
		t.Fatalf("setup: p did not install %s", v)
	}
	if _, pending := ep.PendingStartChange(); pending {
		t.Fatal("setup: start change still pending")
	}

	// q's sync arrives only now. p — q's leader — must still redistribute
	// it to the other leader r and local member q... (q is the origin, so
	// to r and s's side via r; locals here are just q itself, excluded).
	before := len(tr.byKind(types.KindSyncBundle))
	ep.HandleMessage("q", types.WireMsg{
		Kind: types.KindSync, CID: 1, View: types.InitialView("q"), Cut: types.Cut{"q": 0},
	})
	after := tr.byKind(types.KindSyncBundle)
	if len(after) == before {
		t.Fatal("leader stopped redistributing after installing its view")
	}
	last := after[len(after)-1]
	foundQ := false
	for _, entry := range last.msg.Bundle {
		if entry.From == "q" && entry.CID == 1 {
			foundQ = true
		}
	}
	if !foundQ {
		t.Fatalf("late sync not in the redistributed bundle: %+v", last.msg.Bundle)
	}
}

func TestHierarchyBaselineAdvancesWithInstalledViews(t *testing.T) {
	ep, _ := newTestEndpoint(t, "p", func(c *Config) { c.HierarchyGroupSize = 2 })
	ep.HandleStartChange(types.StartChange{ID: 1, Set: types.NewProcSet("p", "q", "r", "s")})
	ep.HandleView(fourMemberView(1, 1))
	// After installing the cid-1 view, cid-1 syncs are history but a cid-2
	// sync is fresh.
	if ep.hasFreshSync("p") {
		t.Fatal("own consumed sync still counted as fresh")
	}
	ep.HandleMessage("q", types.WireMsg{
		Kind: types.KindSync, CID: 2, View: fourMemberView(1, 1), Cut: types.Cut{},
	})
	if !ep.hasFreshSync("q") {
		t.Fatal("post-install sync not counted as fresh")
	}
}
