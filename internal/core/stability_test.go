package core

import (
	"testing"

	"vsgm/internal/types"
)

func TestMsgBufCollect(t *testing.T) {
	var b msgBuf
	for i := 1; i <= 5; i++ {
		b.set(i, types.AppMsg{ID: int64(i)})
	}
	b.collect(3)
	if b.live() != 2 {
		t.Fatalf("live = %d, want 2", b.live())
	}
	if _, ok := b.get(3); ok {
		t.Fatal("collected index still readable")
	}
	if m, ok := b.get(4); !ok || m.ID != 4 {
		t.Fatal("surviving index lost or shifted")
	}
	// Logical positions are preserved.
	if b.longestPrefix() != 5 || b.lastIndex() != 5 {
		t.Fatalf("prefix/last = %d/%d, want 5/5", b.longestPrefix(), b.lastIndex())
	}
	// New arrivals keep their logical index.
	b.set(6, types.AppMsg{ID: 6})
	if m, ok := b.get(6); !ok || m.ID != 6 {
		t.Fatal("post-collection set/get broken")
	}
	// Collecting backwards is a no-op; re-setting a collected index too.
	b.collect(1)
	b.set(2, types.AppMsg{ID: 99})
	if _, ok := b.get(2); ok {
		t.Fatal("collected slot resurrected")
	}
}

func TestStabilityAcksCollectBuffers(t *testing.T) {
	// p in a shared view with q, AckInterval 1: once both sides' acks cover
	// a message, its slot is freed.
	ep, tr := newTestEndpoint(t, "p", func(c *Config) { c.AckInterval = 1 })
	v := joinShared(t, ep)

	// q streams 3 messages; p delivers them and acks each.
	ep.HandleMessage("q", types.WireMsg{Kind: types.KindView, View: v})
	for i := int64(1); i <= 3; i++ {
		ep.HandleMessage("q", types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: i}})
	}
	if got := len(tr.byKind(types.KindAck)); got != 3 {
		t.Fatalf("sent %d acks, want 3", got)
	}
	if got := ep.BufferedMessages(); got != 3 {
		t.Fatalf("buffered before q's ack = %d, want 3 (q has not acked)", got)
	}

	// q acknowledges having delivered two of its own messages.
	ep.HandleMessage("q", types.WireMsg{Kind: types.KindAck, Cut: types.Cut{"p": 0, "q": 2}})
	if got := ep.BufferedMessages(); got != 1 {
		t.Fatalf("buffered after q's ack = %d, want 1 (indices 1-2 stable)", got)
	}

	// Stability never breaks the cut computation.
	ep.HandleStartChange(types.StartChange{ID: 2, Set: types.NewProcSet("p", "q")})
	syncs := tr.byKind(types.KindSync)
	last := syncs[len(syncs)-1]
	if last.msg.Cut["q"] != 3 {
		t.Fatalf("sync cut(q) = %d, want 3 (collected prefix still counts)", last.msg.Cut["q"])
	}
}

func TestAcksDisabledByDefault(t *testing.T) {
	ep, tr := newTestEndpoint(t, "p", nil)
	v := joinShared(t, ep)
	ep.HandleMessage("q", types.WireMsg{Kind: types.KindView, View: v})
	ep.HandleMessage("q", types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: 1}})
	if got := len(tr.byKind(types.KindAck)); got != 0 {
		t.Fatalf("acks sent with AckInterval 0: %d", got)
	}
	// Foreign acks are ignored when the feature is off.
	ep.HandleMessage("q", types.WireMsg{Kind: types.KindAck, Cut: types.Cut{"q": 1}})
	if got := ep.BufferedMessages(); got != 1 {
		t.Fatalf("buffered = %d, want 1", got)
	}
}
