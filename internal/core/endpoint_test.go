package core

import (
	"errors"
	"testing"

	"vsgm/internal/types"
)

// fakeTransport records everything an end-point sends.
type fakeTransport struct {
	sent     []sentMsg
	reliable types.ProcSet
}

type sentMsg struct {
	dests []types.ProcID
	msg   types.WireMsg
}

func (f *fakeTransport) Send(dests []types.ProcID, m types.WireMsg) {
	f.sent = append(f.sent, sentMsg{dests: append([]types.ProcID(nil), dests...), msg: m})
}

func (f *fakeTransport) SetReliable(set types.ProcSet) { f.reliable = set.Clone() }

func (f *fakeTransport) byKind(kind types.MsgKind) []sentMsg {
	var out []sentMsg
	for _, s := range f.sent {
		if s.msg.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

func newTestEndpoint(t *testing.T, id types.ProcID, mutate func(*Config)) (*Endpoint, *fakeTransport) {
	t.Helper()
	tr := &fakeTransport{}
	cfg := Config{ID: id, Transport: tr, AutoBlock: true}
	if mutate != nil {
		mutate(&cfg)
	}
	ep, err := NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ep, tr
}

// twoMemberView builds a view {p, q} with the given start-change ids.
func twoMemberView(id types.ViewID, p, q types.ProcID, pc, qc types.StartChangeID) types.View {
	return types.NewView(id, types.NewProcSet(p, q),
		map[types.ProcID]types.StartChangeID{p: pc, q: qc})
}

func TestNewEndpointValidation(t *testing.T) {
	if _, err := NewEndpoint(Config{Transport: &fakeTransport{}}); err == nil {
		t.Error("missing ID accepted")
	}
	if _, err := NewEndpoint(Config{ID: "p"}); err == nil {
		t.Error("missing transport accepted")
	}
}

func TestInitialStateIsSingletonView(t *testing.T) {
	ep, _ := newTestEndpoint(t, "p", nil)
	if !ep.CurrentView().Equal(types.InitialView("p")) {
		t.Errorf("current view = %s", ep.CurrentView())
	}
	if ep.BlockStatus() != Unblocked {
		t.Errorf("block status = %s", ep.BlockStatus())
	}
	if _, pending := ep.PendingStartChange(); pending {
		t.Error("fresh end-point has a pending start change")
	}
}

func TestSelfDeliveryInSingletonView(t *testing.T) {
	ep, tr := newTestEndpoint(t, "p", nil)
	m, err := ep.Send([]byte("solo"))
	if err != nil {
		t.Fatal(err)
	}
	evs := ep.TakeEvents()
	if len(evs) != 1 {
		t.Fatalf("events = %v", evs)
	}
	d, ok := evs[0].(DeliverEvent)
	if !ok || d.Sender != "p" || d.Msg.ID != m.ID {
		t.Fatalf("event = %v", evs[0])
	}
	// No peers: nothing on the wire.
	if len(tr.sent) != 0 {
		t.Fatalf("sent %v to an empty destination set", tr.sent)
	}
}

func TestStartChangeTriggersBlockSyncAndReliable(t *testing.T) {
	ep, tr := newTestEndpoint(t, "p", nil)
	set := types.NewProcSet("p", "q")
	ep.HandleStartChange(types.StartChange{ID: 1, Set: set})

	if !tr.reliable.Equal(set) {
		t.Errorf("reliable set = %s, want %s", tr.reliable, set)
	}
	if ep.BlockStatus() != Blocked {
		t.Errorf("block status = %s, want blocked (auto)", ep.BlockStatus())
	}
	syncs := tr.byKind(types.KindSync)
	if len(syncs) != 1 {
		t.Fatalf("sent %d sync messages, want 1", len(syncs))
	}
	s := syncs[0]
	if len(s.dests) != 1 || s.dests[0] != "q" {
		t.Errorf("sync dests = %v, want [q]", s.dests)
	}
	if s.msg.CID != 1 || !s.msg.View.Equal(types.InitialView("p")) {
		t.Errorf("sync msg = %v", s.msg)
	}
	var blocked bool
	for _, ev := range ep.TakeEvents() {
		if _, ok := ev.(BlockEvent); ok {
			blocked = true
		}
	}
	if !blocked {
		t.Error("no block event emitted")
	}
}

func TestManualBlockGatesSyncMessage(t *testing.T) {
	ep, tr := newTestEndpoint(t, "p", func(c *Config) { c.AutoBlock = false })
	ep.HandleStartChange(types.StartChange{ID: 1, Set: types.NewProcSet("p", "q")})

	if got := len(tr.byKind(types.KindSync)); got != 0 {
		t.Fatalf("sync sent before block_ok (%d messages)", got)
	}
	if ep.BlockStatus() != Requested {
		t.Fatalf("block status = %s, want requested", ep.BlockStatus())
	}
	if _, err := ep.Send([]byte("ok: not yet blocked")); err != nil {
		t.Fatalf("send while merely requested should succeed: %v", err)
	}

	ep.BlockOK()
	if got := len(tr.byKind(types.KindSync)); got != 1 {
		t.Fatalf("sync messages after block_ok = %d, want 1", got)
	}
	if _, err := ep.Send([]byte("no")); !errors.Is(err, ErrBlocked) {
		t.Fatalf("send while blocked: err = %v, want ErrBlocked", err)
	}
}

// joinShared brings p into a shared view {p, q} (view id 1, cids 1). From a
// singleton view the sync-round intersection is {p} alone, so this first
// transition installs as soon as the membership view arrives; q arrives from
// its own singleton view, hence T = {p}.
func joinShared(t *testing.T, ep *Endpoint) types.View {
	t.Helper()
	ep.HandleStartChange(types.StartChange{ID: 1, Set: types.NewProcSet("p", "q")})
	v1 := twoMemberView(1, "p", "q", 1, 1)
	ep.HandleView(v1)
	ep.HandleMessage("q", types.WireMsg{
		Kind: types.KindSync, CID: 1, View: types.InitialView("q"), Cut: types.Cut{"q": 0},
	})
	if !ep.CurrentView().Equal(v1) {
		t.Fatalf("setup: shared view not installed, current = %s", ep.CurrentView())
	}
	ep.TakeEvents()
	return v1
}

func TestFirstTransitionFromSingletonNeedsOnlyOwnSync(t *testing.T) {
	ep, _ := newTestEndpoint(t, "p", nil)
	ep.HandleStartChange(types.StartChange{ID: 1, Set: types.NewProcSet("p", "q")})

	v := twoMemberView(1, "p", "q", 1, 1)
	ep.HandleView(v)
	// v.set ∩ current_view.set = {p}: only p's own sync is required, so the
	// view installs immediately and q (coming from another view) is outside
	// the transitional set.
	if got := ep.CurrentView(); !got.Equal(v) {
		t.Fatalf("view not installed: current = %s", got)
	}
	var installed *ViewEvent
	for _, ev := range ep.TakeEvents() {
		if ve, ok := ev.(ViewEvent); ok {
			installed = &ve
		}
	}
	if installed == nil {
		t.Fatal("no view event")
	}
	if !installed.TransitionalSet.Equal(types.NewProcSet("p")) {
		t.Errorf("transitional set = %s, want {p}", installed.TransitionalSet)
	}
	if ep.BlockStatus() != Unblocked {
		t.Error("client still blocked after view delivery")
	}
}

func TestViewInstallationWaitsForPeerSync(t *testing.T) {
	ep, _ := newTestEndpoint(t, "p", nil)
	v1 := joinShared(t, ep)

	// From the shared view, the next change genuinely needs q's sync.
	ep.HandleStartChange(types.StartChange{ID: 2, Set: types.NewProcSet("p", "q")})
	v2 := twoMemberView(2, "p", "q", 2, 2)
	ep.HandleView(v2)
	if ep.CurrentView().Equal(v2) {
		t.Fatal("view installed without q's synchronization message")
	}

	ep.HandleMessage("q", types.WireMsg{
		Kind: types.KindSync, CID: 2, View: v1, Cut: types.Cut{"p": 0, "q": 0},
	})
	if !ep.CurrentView().Equal(v2) {
		t.Fatalf("view not installed after sync round: current = %s", ep.CurrentView())
	}
	var installed *ViewEvent
	for _, ev := range ep.TakeEvents() {
		if ve, ok := ev.(ViewEvent); ok {
			installed = &ve
		}
	}
	if installed == nil {
		t.Fatal("no view event")
	}
	if !installed.TransitionalSet.Equal(types.NewProcSet("p", "q")) {
		t.Errorf("transitional set = %s, want {p, q} (moved together)", installed.TransitionalSet)
	}
}

func TestObsoleteViewIsSkipped(t *testing.T) {
	ep, _ := newTestEndpoint(t, "p", nil)
	v1 := joinShared(t, ep)
	installedBefore := ep.ViewsInstalled()

	// A change begins; before its view can complete (q's sync is pending),
	// a newer start_change arrives: the view for cid 2 is now known to be
	// out of date and must never install, even when q's sync shows up.
	ep.HandleStartChange(types.StartChange{ID: 2, Set: types.NewProcSet("p", "q")})
	v2 := twoMemberView(2, "p", "q", 2, 2)
	ep.HandleView(v2)
	ep.HandleStartChange(types.StartChange{ID: 3, Set: types.NewProcSet("p", "q", "r")})
	ep.HandleMessage("q", types.WireMsg{
		Kind: types.KindSync, CID: 2, View: v1, Cut: types.Cut{"p": 0, "q": 0},
	})
	if ep.CurrentView().Equal(v2) {
		t.Fatal("obsolete view was installed")
	}

	// The replacement view (echoing cid 3) installs once its syncs arrive.
	v3 := types.NewView(3, types.NewProcSet("p", "q", "r"),
		map[types.ProcID]types.StartChangeID{"p": 3, "q": 3, "r": 1})
	ep.HandleView(v3)
	ep.HandleMessage("q", types.WireMsg{
		Kind: types.KindSync, CID: 3, View: v1, Cut: types.Cut{"p": 0, "q": 0},
	})
	if !ep.CurrentView().Equal(v3) {
		t.Fatalf("current view = %s, want %s", ep.CurrentView(), v3)
	}
	if got := ep.ViewsInstalled() - installedBefore; got != 1 {
		t.Errorf("views installed = %d, want exactly 1 (v2 skipped)", got)
	}
}

func TestWVLevelInstallsWithoutSyncRound(t *testing.T) {
	ep, tr := newTestEndpoint(t, "p", func(c *Config) { c.Level = LevelWV })
	ep.HandleStartChange(types.StartChange{ID: 1, Set: types.NewProcSet("p", "q")})
	if got := len(tr.byKind(types.KindSync)); got != 0 {
		t.Fatalf("WV level sent %d sync messages", got)
	}
	v := twoMemberView(1, "p", "q", 1, 1)
	ep.HandleView(v)
	if !ep.CurrentView().Equal(v) {
		t.Fatal("WV level must install the membership view directly")
	}
	var ve ViewEvent
	for _, ev := range ep.TakeEvents() {
		if e, ok := ev.(ViewEvent); ok {
			ve = e
		}
	}
	if ve.TransitionalSet != nil {
		t.Error("WV level must not fabricate transitional sets")
	}
}

func TestVSLevelDoesNotBlockClients(t *testing.T) {
	ep, _ := newTestEndpoint(t, "p", func(c *Config) { c.Level = LevelVS })
	ep.HandleStartChange(types.StartChange{ID: 1, Set: types.NewProcSet("p", "q")})
	if ep.BlockStatus() != Unblocked {
		t.Fatal("VS level blocked the client")
	}
	if _, err := ep.Send([]byte("free")); err != nil {
		t.Fatalf("VS-level send during change: %v", err)
	}
}

func TestSmallSyncOptimization(t *testing.T) {
	ep, tr := newTestEndpoint(t, "p", func(c *Config) { c.SmallSync = true })
	// p's current view is {p}; q is a joiner outside it.
	ep.HandleStartChange(types.StartChange{ID: 1, Set: types.NewProcSet("p", "q")})
	syncs := tr.byKind(types.KindSync)
	if len(syncs) != 1 {
		t.Fatalf("sync messages = %d, want 1", len(syncs))
	}
	if !syncs[0].msg.Small {
		t.Error("sync to a non-member of the current view should be small")
	}
	if syncs[0].msg.Cut != nil {
		t.Error("small sync must not carry a cut")
	}
}

func TestViewMessagePrecedesAppMessages(t *testing.T) {
	ep, tr := newTestEndpoint(t, "p", nil)
	tr.sent = nil
	joinShared(t, ep)

	// Installing the view announces it (view_msg) before any application
	// traffic flows in it.
	var kinds []types.MsgKind
	for _, s := range tr.sent {
		kinds = append(kinds, s.msg.Kind)
	}
	idxView := -1
	for i, k := range kinds {
		if k == types.KindView {
			idxView = i
		}
		if k == types.KindApp {
			t.Fatalf("app message on the wire before any send: %v", kinds)
		}
	}
	if idxView == -1 {
		t.Fatalf("no view_msg announced after installing the view: %v", kinds)
	}

	if _, err := ep.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	last := tr.sent[len(tr.sent)-1]
	if last.msg.Kind != types.KindApp {
		t.Fatalf("last wire message is %s, want app_msg", last.msg.Kind)
	}
	if last.msg.HistIndex != 1 {
		t.Errorf("history index = %d, want 1", last.msg.HistIndex)
	}
}

func TestPeerMessagesDeliverInFIFOOrderWithinView(t *testing.T) {
	ep, _ := newTestEndpoint(t, "p", nil)
	v := joinShared(t, ep)

	// q announces the view, then streams three messages.
	ep.HandleMessage("q", types.WireMsg{Kind: types.KindView, View: v})
	for i := int64(1); i <= 3; i++ {
		ep.HandleMessage("q", types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: i}})
	}
	var ids []int64
	for _, ev := range ep.TakeEvents() {
		if d, ok := ev.(DeliverEvent); ok {
			ids = append(ids, d.Msg.ID)
		}
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("delivered ids = %v, want [1 2 3]", ids)
	}
}

func TestMessagesFromOldViewAreNotDeliveredInNewView(t *testing.T) {
	ep, _ := newTestEndpoint(t, "p", nil)
	// q streams a message while p is still in its singleton view: the
	// message is buffered under q's announced view, which p never joins
	// under that key until the view installs.
	vOld := twoMemberView(1, "p", "q", 1, 1)
	ep.HandleMessage("q", types.WireMsg{Kind: types.KindView, View: vOld})
	ep.HandleMessage("q", types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: 42}})
	if evs := ep.TakeEvents(); len(evs) != 0 {
		t.Fatalf("delivered %v before installing the view", evs)
	}

	// Once p installs that view, the buffered message delivers.
	ep.HandleStartChange(types.StartChange{ID: 1, Set: types.NewProcSet("p", "q")})
	ep.HandleView(vOld)
	ep.HandleMessage("q", types.WireMsg{
		Kind: types.KindSync, CID: 1, View: types.InitialView("q"), Cut: types.Cut{"q": 0},
	})
	var delivered bool
	for _, ev := range ep.TakeEvents() {
		if d, ok := ev.(DeliverEvent); ok && d.Msg.ID == 42 {
			delivered = true
		}
	}
	if !delivered {
		t.Fatal("buffered message not delivered after view installation")
	}
}

func TestCrashFreezesAndRecoverResets(t *testing.T) {
	ep, _ := newTestEndpoint(t, "p", nil)
	if _, err := ep.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	ep.Crash()
	if !ep.Crashed() {
		t.Fatal("not crashed")
	}
	if _, err := ep.Send([]byte("y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("send while crashed: %v", err)
	}
	ep.HandleStartChange(types.StartChange{ID: 9, Set: types.NewProcSet("p")})
	if _, pending := ep.PendingStartChange(); pending {
		t.Fatal("crashed end-point processed an input")
	}

	ep.Recover()
	if ep.Crashed() {
		t.Fatal("still crashed after recover")
	}
	if !ep.CurrentView().Equal(types.InitialView("p")) {
		t.Fatal("recovery must reset to the initial singleton view")
	}
	if ep.MessagesDelivered() != 1 {
		// The pre-crash delivery already happened; counters are not state
		// variables of the automaton and survive for diagnostics.
		t.Logf("delivered counter = %d", ep.MessagesDelivered())
	}
}

func TestGarbageCollectionOfOldViewBuffers(t *testing.T) {
	run := func(retain bool) *Endpoint {
		ep, _ := newTestEndpoint(t, "p", func(c *Config) { c.RetainOldBuffers = retain })
		if _, err := ep.Send([]byte("in-initial-view")); err != nil {
			t.Fatal(err)
		}
		ep.HandleStartChange(types.StartChange{ID: 1, Set: types.NewProcSet("p", "q")})
		ep.HandleView(twoMemberView(1, "p", "q", 1, 1))
		ep.HandleMessage("q", types.WireMsg{
			Kind: types.KindSync, CID: 1, View: types.InitialView("q"), Cut: types.Cut{"q": 0},
		})
		return ep
	}
	gc := run(false)
	if buf := gc.msgs.peek("p", types.InitialView("p").Key()); buf != nil {
		t.Error("old-view buffer survived garbage collection")
	}
	keep := run(true)
	if buf := keep.msgs.peek("p", types.InitialView("p").Key()); buf == nil {
		t.Error("RetainOldBuffers dropped the old-view buffer")
	}
}

func TestLevelStrings(t *testing.T) {
	if LevelWV.String() != "WV_RFIFO" || LevelVS.String() != "VS_RFIFO+TS" || LevelGCS.String() != "GCS" {
		t.Error("level names wrong")
	}
	if Unblocked.String() != "unblocked" || Requested.String() != "requested" || Blocked.String() != "blocked" {
		t.Error("block status names wrong")
	}
}

func TestElidedSyncViewIsReconstructedFromViewMsg(t *testing.T) {
	// p (SmallSync on) is in a shared view with q; the sync it sends to q
	// elides the view.
	ep, tr := newTestEndpoint(t, "p", func(c *Config) { c.SmallSync = true })
	joinShared(t, ep)
	tr.sent = nil
	ep.HandleStartChange(types.StartChange{ID: 2, Set: types.NewProcSet("p", "q")})
	syncs := tr.byKind(types.KindSync)
	if len(syncs) != 1 {
		t.Fatalf("sync messages = %d, want 1", len(syncs))
	}
	if !syncs[0].msg.ElideView || syncs[0].msg.Small {
		t.Fatalf("sync to a current-view member = %+v, want full sync with elided view", syncs[0].msg)
	}
	if syncs[0].msg.Cut == nil {
		t.Fatal("elided sync lost its cut")
	}

	// Receiver side: an end-point that announced view v1 via view_msg and
	// then sends an elided sync must be treated as syncing from v1.
	rcv, _ := newTestEndpoint(t, "p", nil)
	v1 := joinShared(t, rcv)
	rcv.HandleStartChange(types.StartChange{ID: 2, Set: types.NewProcSet("p", "q")})
	v2 := twoMemberView(2, "p", "q", 2, 2)
	rcv.HandleView(v2)
	rcv.HandleMessage("q", types.WireMsg{Kind: types.KindView, View: v1})
	rcv.HandleMessage("q", types.WireMsg{
		Kind: types.KindSync, CID: 2, ElideView: true, Cut: types.Cut{"p": 0, "q": 0},
	})
	if !rcv.CurrentView().Equal(v2) {
		t.Fatalf("view not installed from elided sync: current = %s", rcv.CurrentView())
	}
	var installed *ViewEvent
	for _, ev := range rcv.TakeEvents() {
		if ve, ok := ev.(ViewEvent); ok {
			installed = &ve
		}
	}
	if installed == nil || !installed.TransitionalSet.Equal(types.NewProcSet("p", "q")) {
		t.Fatalf("transitional set from elided sync wrong: %v", installed)
	}
}

func TestElidedSyncIsSmallerOnTheWire(t *testing.T) {
	full := types.WireMsg{
		Kind: types.KindSync, CID: 1,
		View: twoMemberView(1, "p", "q", 1, 1),
		Cut:  types.Cut{"p": 3, "q": 4},
	}
	elided := full
	elided.View = types.View{}
	elided.ElideView = true
	small := types.WireMsg{Kind: types.KindSync, CID: 1, Small: true}
	if !(small.Size() < elided.Size() && elided.Size() < full.Size()) {
		t.Fatalf("sizes: small=%d elided=%d full=%d, want strictly increasing",
			small.Size(), elided.Size(), full.Size())
	}
}

func TestWVLevelIgnoresSyncAndBundleInput(t *testing.T) {
	ep, _ := newTestEndpoint(t, "p", func(c *Config) { c.Level = LevelWV })
	ep.HandleMessage("q", types.WireMsg{
		Kind: types.KindSync, CID: 1, View: types.InitialView("q"), Cut: types.Cut{"q": 0},
	})
	ep.HandleMessage("q", types.WireMsg{
		Kind:   types.KindSyncBundle,
		Bundle: []types.SyncEntry{{From: "r", CID: 1, View: types.InitialView("r")}},
	})
	if len(ep.syncMsgs) != 0 {
		t.Fatal("WV-level end-point stored synchronization state")
	}
}

func TestBundleEntriesForSelfAreSkipped(t *testing.T) {
	ep, _ := newTestEndpoint(t, "p", func(c *Config) { c.HierarchyGroupSize = 2 })
	ep.HandleMessage("q", types.WireMsg{
		Kind: types.KindSyncBundle,
		Bundle: []types.SyncEntry{
			{From: "p", CID: 99, View: types.InitialView("p")}, // echo of our own
			{From: "r", CID: 1, View: types.InitialView("r"), Cut: types.Cut{"r": 0}},
		},
	})
	if ep.syncMsgOf("p", 99) != nil {
		t.Fatal("a bundled echo of our own sync was stored")
	}
	if ep.syncMsgOf("r", 1) == nil {
		t.Fatal("a peer's bundled sync was dropped")
	}
}

func TestAppMsgFromUnknownSenderDefaultsToItsInitialView(t *testing.T) {
	// A stream that starts without a view_msg (possible after recovery
	// races) buffers under the sender's initial singleton view and is never
	// delivered here — but must not be misattributed or crash.
	ep, _ := newTestEndpoint(t, "p", nil)
	ep.HandleMessage("z", types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: 1}})
	if evs := ep.TakeEvents(); len(evs) != 0 {
		t.Fatalf("delivered %v from an unannounced stream", evs)
	}
	if got := ep.msgs.peek("z", types.InitialView("z").Key()); got == nil {
		t.Fatal("message not buffered under the sender's initial view")
	}
}
