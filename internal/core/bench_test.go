package core

import (
	"fmt"
	"testing"

	"vsgm/internal/types"
)

// BenchmarkEndpointReceivePath measures the per-message cost of the
// end-point's input handling plus delivery (buffering, FIFO bookkeeping,
// step loop) in a stable two-member view.
func BenchmarkEndpointReceivePath(b *testing.B) {
	ep, err := NewEndpoint(Config{ID: "p", Transport: &fakeTransport{}, AutoBlock: true})
	if err != nil {
		b.Fatal(err)
	}
	members := types.NewProcSet("p", "q")
	v := types.NewView(1, members, map[types.ProcID]types.StartChangeID{"p": 1, "q": 1})
	ep.HandleStartChange(types.StartChange{ID: 1, Set: members})
	ep.HandleView(v)
	ep.HandleMessage("q", types.WireMsg{
		Kind: types.KindSync, CID: 1, View: types.InitialView("q"), Cut: types.Cut{"q": 0},
	})
	ep.HandleMessage("q", types.WireMsg{Kind: types.KindView, View: v})
	ep.TakeEvents()

	m := types.WireMsg{Kind: types.KindApp, App: types.AppMsg{Payload: make([]byte, 64)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.App.ID = int64(i)
		ep.HandleMessage("q", m)
		ep.TakeEvents()
	}
}

// BenchmarkEndpointSendPath measures the application send path (buffering,
// multicast fan-out through the transport, self-delivery).
func BenchmarkEndpointSendPath(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			ep, err := NewEndpoint(Config{ID: "p00", Transport: &fakeTransport{}, AutoBlock: true})
			if err != nil {
				b.Fatal(err)
			}
			members := types.NewProcSet()
			sid := make(map[types.ProcID]types.StartChangeID, n)
			for i := 0; i < n; i++ {
				q := types.ProcID(fmt.Sprintf("p%02d", i))
				members.Add(q)
				sid[q] = 1
			}
			ep.HandleStartChange(types.StartChange{ID: 1, Set: members})
			ep.HandleView(types.NewView(1, members, sid))
			if !ep.CurrentView().Members.Equal(members) {
				b.Fatal("setup failed")
			}
			payload := make([]byte, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ep.Send(payload); err != nil {
					b.Fatal(err)
				}
				ep.TakeEvents()
			}
		})
	}
}

// BenchmarkMsgBufGrowth measures msgBuf.set's buffer-growth cost: the
// contiguous FIFO fill of a sender's own stream, and the forwarded-hole jump
// where one message lands far past the current end. Growth is a reslice or
// one doubling allocation per step, never an element-at-a-time nil append.
func BenchmarkMsgBufGrowth(b *testing.B) {
	const n = 1024
	msg := types.AppMsg{ID: 1, Payload: []byte("x")}
	b.Run("contiguous", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf msgBuf
			for j := 1; j <= n; j++ {
				buf.set(j, msg)
			}
		}
	})
	b.Run("hole-jump", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf msgBuf
			buf.set(n, msg)
		}
	})
}
