package core

import "vsgm/internal/types"

// Two-tier synchronization hierarchy — the Section 9 extension the paper
// sketches after Guo et al.: instead of every member multicasting its
// synchronization message to all peers (N·(N−1) messages per change),
// members send their cut to a designated group leader; leaders aggregate
// the cuts into bundles, exchange them leader-to-leader, and redistribute
// remote bundles to their local members.
//
// Leaders and groups are derived deterministically from the change's member
// set: the sorted members are chunked into groups of HierarchyGroupSize,
// and the smallest member of each chunk leads it. Because every member of a
// stable change holds the identical start_change set, all members compute
// the same assignment. During cascades members may transiently disagree on
// the grouping; that only perturbs routing — synchronization messages are
// idempotent data, so safety is untouched, and the paper's conditional
// liveness (which assumes a stabilized membership) is preserved because the
// final change yields a consistent assignment.
//
// The bundling discipline: a leader queues every synchronization message it
// learns (its own, a local member's, or a remote bundle's entries) and
// flushes once it has heard from every local member of the pending change —
// locally originated entries go to the other leaders and to the local
// members, remote entries go to the local members only.

// hierarchyGroups chunks the sorted members into groups of size g and
// returns, for each member, its group index, plus the leaders in order.
func hierarchyGroups(set types.ProcSet, g int) (groupOf map[types.ProcID]int, leaders []types.ProcID, groups [][]types.ProcID) {
	sorted := set.Sorted()
	groupOf = make(map[types.ProcID]int, len(sorted))
	for i, p := range sorted {
		idx := i / g
		groupOf[p] = idx
		if i%g == 0 {
			leaders = append(leaders, p)
			groups = append(groups, nil)
		}
		groups[idx] = append(groups[idx], p)
	}
	return groupOf, leaders, groups
}

// hTopology is the end-point's view of the current change's hierarchy.
type hTopology struct {
	leader  types.ProcID   // this end-point's leader
	isLead  bool           // whether this end-point leads its group
	local   []types.ProcID // members of this end-point's group (incl. self)
	leaders []types.ProcID // all leaders
}

// hierarchyFor computes the topology for the given change set, or nil when
// the hierarchy is disabled or the set is trivial.
func (e *Endpoint) hierarchyFor(set types.ProcSet) *hTopology {
	if e.hierarchyGroup <= 1 || set.Len() <= 2 || !set.Contains(e.id) {
		return nil
	}
	groupOf, leaders, groups := hierarchyGroups(set, e.hierarchyGroup)
	idx := groupOf[e.id]
	return &hTopology{
		leader:  groups[idx][0],
		isLead:  groups[idx][0] == e.id,
		local:   groups[idx],
		leaders: leaders,
	}
}

// hEntryKey deduplicates bundle entries per distribution class.
type hEntryKey struct {
	from   types.ProcID
	cid    types.StartChangeID
	remote bool
}

// hQueue queues a learned synchronization entry for redistribution by a
// leader. remote marks entries learned from another leader's bundle (they
// flow only to local members).
func (e *Endpoint) hQueue(entry types.SyncEntry, remote bool) {
	key := hEntryKey{from: entry.From, cid: entry.CID, remote: remote}
	if _, dup := e.hSent[key]; dup {
		return
	}
	e.hSent[key] = struct{}{}
	e.hPending = append(e.hPending, hPendingEntry{entry: entry, remote: remote})
}

type hPendingEntry struct {
	entry  types.SyncEntry
	remote bool
}

// tryBundle is the leader's aggregation action: once every local member of
// the pending change has been heard from, flush the queued entries —
// locally originated ones to the other leaders and the local members,
// remote ones to the local members only.
//
// The action stays enabled after this end-point installs its view: peers
// whose synchronization messages route through this leader may still be
// completing the change (their syncs can even arrive after our
// installation), so redistribution continues under the installed view's
// membership, which for the change just completed is the same grouping.
func (e *Endpoint) tryBundle() bool {
	if e.level < LevelVS || len(e.hPending) == 0 {
		return false
	}
	routingSet := e.currentView.Members
	if e.startChange != nil {
		routingSet = e.startChange.Set
	}
	topo := e.hierarchyFor(routingSet)
	if topo == nil || !topo.isLead {
		return false
	}
	// Batching gate: while our own change is still undecided, wait until
	// every local member has synchronized this era. The gate is purely an
	// optimization and must never cost liveness, so it opens
	// unconditionally once the membership has decided this change (the
	// view answering our start_change has arrived) — from then on, and
	// after installation, every queued entry flushes immediately; the
	// pre-installation flush precedes view delivery in the step loop.
	if e.startChange != nil {
		if sid, ok := e.mbrshpView.StartID[e.id]; !ok || sid != e.startChange.ID {
			for _, q := range topo.local {
				if !e.hasFreshSync(q) {
					return false // a local member has not synchronized this era yet
				}
			}
		}
	}

	var localOrigin, remoteOrigin []types.SyncEntry
	for _, pe := range e.hPending {
		if pe.remote {
			remoteOrigin = append(remoteOrigin, pe.entry)
		} else {
			localOrigin = append(localOrigin, pe.entry)
		}
	}
	e.hPending = nil

	locals := make([]types.ProcID, 0, len(topo.local))
	for _, q := range topo.local {
		if q != e.id {
			locals = append(locals, q)
		}
	}
	otherLeaders := make([]types.ProcID, 0, len(topo.leaders))
	for _, l := range topo.leaders {
		if l != e.id {
			otherLeaders = append(otherLeaders, l)
		}
	}

	if len(localOrigin) > 0 {
		msg := types.WireMsg{Kind: types.KindSyncBundle, Bundle: localOrigin}
		if len(otherLeaders) > 0 {
			e.transport.Send(otherLeaders, msg)
		}
		if len(locals) > 0 {
			e.transport.Send(locals, msg)
		}
	}
	if len(remoteOrigin) > 0 && len(locals) > 0 {
		e.transport.Send(locals, types.WireMsg{Kind: types.KindSyncBundle, Bundle: remoteOrigin})
	}
	return true
}

// hasFreshSync reports whether q has synchronized since the last view
// installation (any cid above the era baseline).
func (e *Endpoint) hasFreshSync(q types.ProcID) bool {
	base, hasBase := e.hBaseline[q]
	for cid := range e.syncMsgs[q] {
		if !hasBase || cid > base {
			return true
		}
	}
	return false
}

// advanceBaseline marks the cids the just-installed view consumed: its
// startId map records, per member, exactly which change the view settled.
// Syncs at or below the baseline are history; anything above belongs to a
// change still in flight — even if it arrived before this installation.
func (e *Endpoint) advanceBaseline(v types.View) {
	for q, cid := range v.StartID {
		if cur, ok := e.hBaseline[q]; !ok || cid > cur {
			e.hBaseline[q] = cid
		}
	}
}

// hRequeue rebuilds the aggregation queue for a new change: the routing
// topology may have shifted (cascaded membership sets group members
// differently), so entries bundled under the old topology may need to reach
// different leaders or locals now. Every era-fresh synchronization message
// is re-enqueued and re-classified under the new change's topology.
func (e *Endpoint) hRequeue() {
	if e.hierarchyGroup <= 1 || e.startChange == nil {
		return
	}
	topo := e.hierarchyFor(e.startChange.Set)
	if topo == nil || !topo.isLead {
		e.hPending = nil
		return
	}
	localSet := make(map[types.ProcID]bool, len(topo.local))
	for _, q := range topo.local {
		localSet[q] = true
	}
	e.hSent = make(map[hEntryKey]struct{})
	e.hPending = nil
	for q, row := range e.syncMsgs {
		base, hasBase := e.hBaseline[q]
		for cid, sm := range row {
			if hasBase && cid <= base {
				continue
			}
			e.hQueue(types.SyncEntry{
				From: q, CID: cid, View: sm.View.Clone(), Cut: sm.Cut.Clone(), Small: sm.Small,
			}, !localSet[q])
		}
	}
}

// storeSyncEntry records one synchronization message (from a direct sync, or
// unpacked from a bundle) exactly as Figure 10's receive action does.
func (e *Endpoint) storeSyncEntry(from types.ProcID, cid types.StartChangeID, view types.View, cut types.Cut, small bool) {
	row := e.syncMsgs[from]
	if row == nil {
		row = make(map[types.StartChangeID]*types.SyncMsg)
		e.syncMsgs[from] = row
	}
	if _, exists := row[cid]; exists {
		return
	}
	row[cid] = &types.SyncMsg{View: view.Clone(), Cut: cut.Clone(), Small: small}
	e.limitsValid = false
	e.fwdDirty = true
}
