package core

import "vsgm/internal/types"

// step fires enabled locally controlled actions until quiescence. Each
// locally controlled action of the paper's automata is its own task; firing
// eagerly after every input realizes the fairness assumption (an enabled
// action that stays enabled eventually executes).
func (e *Endpoint) step() {
	if e.crashed {
		return
	}
	// tryForward must precede tryDeliverView: installing the view disables
	// forwarding (start_change resets), and the liveness argument of
	// Section 7.2 relies on committed holders forwarding missing messages
	// before they move on.
	for {
		switch {
		case e.tryDeliverApp():
		case e.tryReliable():
		case e.tryBlock():
		case e.trySendSync():
		case e.tryBundle():
		case e.tryForward():
		case e.tryDeliverView():
		case e.trySendViewMsg():
		case e.trySendApp():
		case e.tryAck():
		default:
			return
		}
	}
}

// tryReliable is co_rfifo.reliable_p(set). WV_RFIFO allows any superset of
// the current view's membership; VS_RFIFO+TS restricts the set to exactly
// current_view.set, or current_view.set ∪ start_change.set while a change is
// pending (Figure 10).
func (e *Endpoint) tryReliable() bool {
	desired := e.currentView.Members.Clone()
	if e.level >= LevelVS && e.startChange != nil {
		desired = desired.Union(e.startChange.Set)
	}
	if e.reliableSet.Equal(desired) {
		return false
	}
	e.reliableSet = desired
	e.transport.SetReliable(desired.Clone())
	return true
}

// tryBlock is block_p() (Figure 11): once a view change starts, ask the
// application to stop sending.
func (e *Endpoint) tryBlock() bool {
	if e.level != LevelGCS || e.startChange == nil || e.blockStatus != Unblocked {
		return false
	}
	e.blockStatus = Requested
	e.emit(BlockEvent{})
	if e.autoBlock {
		e.blockStatus = Blocked
	}
	return true
}

// trySendSync is co_rfifo.send_p(set, sync_msg, cid, v, cut) (Figure 10,
// restricted by Figure 11): after a start_change — and, at the GCS level,
// once the client is blocked — send one synchronization message tagged with
// the locally unique cid, carrying the current view and the cut of messages
// this end-point commits to deliver before the next view.
func (e *Endpoint) trySendSync() bool {
	if e.level < LevelVS || e.startChange == nil {
		return false
	}
	if !e.startChange.Set.SubsetOf(e.reliableSet) {
		return false
	}
	if e.syncMsgOf(e.id, e.startChange.ID) != nil {
		return false
	}
	if e.level == LevelGCS && e.blockStatus != Blocked {
		return false
	}

	cut := make(types.Cut, len(e.curMembers))
	for _, q := range e.curMembers {
		cut[q] = e.curBuf(q).longestPrefix()
	}
	cid := e.startChange.ID
	trace := e.startChange.Trace
	full := types.WireMsg{
		Kind:  types.KindSync,
		CID:   cid,
		View:  e.currentView.Clone(),
		Cut:   cut.Clone(),
		Trace: trace,
	}

	others := e.startChange.Set.Minus(types.NewProcSet(e.id))
	if topo := e.hierarchyFor(e.startChange.Set); topo != nil {
		// Two-tier hierarchy (Section 9): route the sync to the group
		// leader only; a leader queues its own entry for the next bundle.
		if topo.isLead {
			e.hQueue(types.SyncEntry{
				From: e.id, CID: cid, View: e.currentView.Clone(), Cut: cut.Clone(),
			}, false)
		} else {
			e.transport.Send([]types.ProcID{topo.leader}, full)
		}
	} else if e.smallSync {
		// Section 5.2.4: end-points outside our current view cannot have us
		// in their transitional set; a small cid-only message suffices.
		// Members of our current view, conversely, can deduce our view from
		// the preceding view_msg on the same FIFO channel, so the full sync
		// elides it (the section's second optimization).
		fullDests := others.Intersect(e.currentView.Members).Sorted()
		smallDests := others.Minus(e.currentView.Members).Sorted()
		if len(fullDests) > 0 {
			elided := full
			elided.View = types.View{}
			elided.ElideView = true
			e.transport.Send(fullDests, elided)
		}
		if len(smallDests) > 0 {
			e.transport.Send(smallDests, types.WireMsg{Kind: types.KindSync, CID: cid, Small: true, Trace: trace})
		}
	} else if others.Len() > 0 {
		e.transport.Send(others.Sorted(), full)
	}

	row := e.syncMsgs[e.id]
	if row == nil {
		row = make(map[types.StartChangeID]*types.SyncMsg)
		e.syncMsgs[e.id] = row
	}
	row[cid] = &types.SyncMsg{View: e.currentView.Clone(), Cut: cut}
	e.ownSync.valid = true
	e.ownSync.cid = cid
	e.ownSync.view = e.currentView.Clone()
	e.ownSync.cut = cut.Clone()
	e.ownSync.trace = trace
	e.limitsValid = false
	e.fwdDirty = true
	if e.trace != nil {
		e.trace.SyncSent(cid, trace, false)
	}
	return true
}

// ResendSync replays this end-point's committed synchronization message for
// the pending start_change, marked as a probe, to the other members of the
// change set. A probed peer answers with its own latest sync, so both
// directions of a lost sync exchange are repaired. The resend carries the
// originally committed view and cut verbatim — the cut is binding — and it
// is always the full message: a duplicate full sync is idempotent for every
// receiver, while re-deriving the Section 5.2.4 small/elided forms here
// could not rely on FIFO adjacency to a view_msg. It reports whether a
// probe was sent (false when no change is pending or no sync was sent yet).
func (e *Endpoint) ResendSync() bool {
	if e.crashed || e.startChange == nil || !e.ownSync.valid || e.ownSync.cid != e.startChange.ID {
		return false
	}
	others := e.startChange.Set.Minus(types.NewProcSet(e.id))
	if others.Len() == 0 {
		return false
	}
	e.transport.Send(others.Sorted(), types.WireMsg{
		Kind:  types.KindSync,
		CID:   e.ownSync.cid,
		View:  e.ownSync.view.Clone(),
		Cut:   e.ownSync.cut.Clone(),
		Probe: true,
		Trace: e.ownSync.trace,
	})
	if e.trace != nil {
		e.trace.SyncSent(e.ownSync.cid, e.ownSync.trace, true)
	}
	return true
}

// answerSyncProbe responds to a probe by resending our own latest committed
// sync directly to the prober. This covers the asymmetric wedge: we may
// have already installed the view (nothing pending, so we would never probe
// ourselves) while the prober still lacks our sync. Answers are plain
// syncs, never probes, so two healthy peers cannot ping-pong.
func (e *Endpoint) answerSyncProbe(from types.ProcID) {
	if !e.ownSync.valid || from == e.id {
		return
	}
	e.transport.Send([]types.ProcID{from}, types.WireMsg{
		Kind:  types.KindSync,
		CID:   e.ownSync.cid,
		View:  e.ownSync.view.Clone(),
		Cut:   e.ownSync.cut.Clone(),
		Trace: e.ownSync.trace,
	})
	if e.trace != nil {
		e.trace.SyncSent(e.ownSync.cid, e.ownSync.trace, true)
	}
}

// trySendViewMsg is co_rfifo.send_p(set, view_msg, v) (Figure 9): before
// sending application messages in a view, announce the view to the members.
func (e *Endpoint) trySendViewMsg() bool {
	if e.viewMsg[e.id].Key() == e.curKey {
		return false
	}
	if !e.currentView.Members.SubsetOf(e.reliableSet) {
		return false
	}
	if len(e.curOthers) > 0 {
		e.transport.Send(e.curOthers, types.WireMsg{Kind: types.KindView, View: e.currentView.Clone()})
	}
	e.viewMsg[e.id] = e.currentView.Clone()
	return true
}

// trySendApp is co_rfifo.send_p(set, app_msg, m) (Figure 9): multicast the
// next unsent application message of the current view, stamped with the
// history tags of Section 6.1.1.
func (e *Endpoint) trySendApp() bool {
	if e.viewMsg[e.id].Key() != e.curKey {
		return false
	}
	own := e.msgs.peek(e.id, e.curKey)
	next := e.lastSent + 1
	m, ok := own.get(next)
	if !ok {
		return false
	}
	if len(e.curOthers) > 0 {
		e.transport.Send(e.curOthers, types.WireMsg{
			Kind:      types.KindApp,
			App:       m,
			HistView:  e.currentView.Clone(),
			HistIndex: next,
		})
	}
	e.lastSent = next
	return true
}

// tryDeliverApp is deliver_p(q, m) (Figure 9, restricted by Figure 10): for
// each sender, deliver the next message of the current view, subject to the
// VS restriction that, once this end-point has committed a cut, it delivers
// no message beyond the cuts associated with the forthcoming view.
func (e *Endpoint) tryDeliverApp() bool {
	e.refreshLimits()
	for _, q := range e.curMembers {
		next := e.lastDlvrd[q] + 1
		m, ok := e.curBuf(q).get(next)
		if !ok {
			continue
		}
		if q == e.id && e.lastDlvrd[q] >= e.lastSent {
			// Own messages must be sent to the other members before they
			// may be self-delivered (Figure 9).
			continue
		}
		if e.limits != nil && next > e.limits[q] {
			continue
		}
		e.lastDlvrd[q] = next
		e.msgsDelivered++
		e.sinceAck++
		e.emit(DeliverEvent{Sender: q, Msg: m, InView: e.currentView.Clone()})
		return true
	}
	return false
}

// refreshLimits recomputes the Figure 10 restriction on deliver_p(q, m):
// after committing a cut and before knowing the membership's verdict,
// deliver only up to our own cut; once the membership view for this
// start_change is known, deliver up to the maximum cut among the candidate
// transitional-set members. A nil limits cut means delivery is unrestricted.
func (e *Endpoint) refreshLimits() {
	if e.limitsValid {
		return
	}
	e.limitsValid = true
	e.limits = nil
	if e.level < LevelVS || e.startChange == nil {
		return
	}
	own := e.syncMsgOf(e.id, e.startChange.ID)
	if own == nil {
		return
	}
	if sid, ok := e.mbrshpView.StartID[e.id]; !ok || sid != e.startChange.ID {
		e.limits = own.Cut
		return
	}
	limits := make(types.Cut, len(e.curMembers))
	for r := range e.mbrshpView.Members {
		if !e.currentView.Members.Contains(r) {
			continue
		}
		sm := e.syncMsgOf(r, e.mbrshpView.StartID[r])
		if sm == nil || sm.Small || !sm.View.Equal(e.currentView) {
			continue
		}
		for q, c := range sm.Cut {
			if c > limits[q] {
				limits[q] = c
			}
		}
	}
	e.limits = limits
}

// tryDeliverView is view_p(v, T) (Figures 9-11): install the membership's
// latest view once the synchronization round for it has completed and the
// agreed cut has been fully delivered.
func (e *Endpoint) tryDeliverView() bool {
	v := e.mbrshpView
	if v.ID <= e.currentView.ID || !v.Members.Contains(e.id) {
		return false
	}

	var trans types.ProcSet
	if e.level >= LevelVS {
		if e.startChange == nil {
			return false
		}
		// Prevent delivery of obsolete views: the view must answer our
		// latest start_change (Figure 10).
		if sid, ok := v.StartID[e.id]; !ok || sid != e.startChange.ID {
			return false
		}
		inter := v.Members.Intersect(e.currentView.Members)
		for q := range inter {
			if e.syncMsgOf(q, v.StartID[q]) == nil {
				return false
			}
		}
		trans = make(types.ProcSet, inter.Len())
		cuts := make([]types.Cut, 0, inter.Len())
		for q := range inter {
			sm := e.syncMsgOf(q, v.StartID[q])
			if !sm.Small && sm.View.Equal(e.currentView) {
				trans.Add(q)
				cuts = append(cuts, sm.Cut)
			}
		}
		agreed := types.MaxCut(cuts)
		for q := range e.currentView.Members {
			if e.lastDlvrd[q] != agreed[q] {
				return false
			}
		}
		if e.level == LevelGCS {
			// Self Delivery (Figure 7/11): all own messages of the current
			// view must have been delivered.
			if e.lastDlvrd[e.id] != e.curBuf(e.id).lastIndex() {
				return false
			}
		}
	}

	var transCopy types.ProcSet
	if trans != nil {
		transCopy = trans.Clone()
	}
	e.emit(ViewEvent{View: v.Clone(), TransitionalSet: transCopy})
	if e.trace != nil {
		e.trace.ViewInstalled(v.Clone())
	}
	e.setCurrentView(v.Clone())
	e.lastSent = 0
	e.lastDlvrd = make(map[types.ProcID]int)
	e.startChange = nil
	e.blockStatus = Unblocked
	e.limitsValid = false
	e.ackCounts = make(map[types.ProcID]types.Cut)
	e.sinceAck = 0
	e.hPending = nil
	e.hSent = make(map[hEntryKey]struct{})
	e.advanceBaseline(e.currentView)
	e.viewsInstalled++
	if !e.retainOld {
		e.msgs.dropExcept(e.curKey)
		e.forwarded = make(map[forwardKey]struct{})
	}
	return true
}

// tryForward is co_rfifo.send_p(set, fwd_msg, r, v, m, i) (Figure 10): ask
// the configured forwarding strategy for forwarding obligations and send any
// copy not already forwarded to that destination.
func (e *Endpoint) tryForward() bool {
	if e.level < LevelVS || e.fwd == nil || e.startChange == nil || !e.fwdDirty {
		return false
	}
	e.fwdDirty = false
	fired := false
	for _, f := range e.fwd.Plan(e) {
		m, ok := e.curBuf(f.Origin).get(f.Index)
		if !ok {
			continue
		}
		var dests []types.ProcID
		for _, q := range f.Dests {
			if q == e.id {
				continue
			}
			k := forwardKey{dest: q, origin: f.Origin, viewKey: e.curKey, index: f.Index}
			if _, dup := e.forwarded[k]; dup {
				continue
			}
			e.forwarded[k] = struct{}{}
			dests = append(dests, q)
		}
		if len(dests) == 0 {
			continue
		}
		e.transport.Send(dests, types.WireMsg{
			Kind:   types.KindFwd,
			App:    m,
			Origin: f.Origin,
			View:   e.currentView.Clone(),
			Index:  f.Index,
		})
		e.forwardsPlanned += int64(len(dests))
		fired = true
	}
	return fired
}

// tryAck multicasts a stability acknowledgment — the per-sender delivered
// counts — once enough deliveries accumulated, and collects any message
// slots that every view member has acknowledged (the garbage-collection
// mechanism Section 5.1 notes real implementations employ).
func (e *Endpoint) tryAck() bool {
	if e.ackInterval <= 0 || e.sinceAck < e.ackInterval {
		return false
	}
	e.sinceAck = 0
	cut := make(types.Cut, len(e.curMembers))
	for _, q := range e.curMembers {
		cut[q] = e.lastDlvrd[q]
	}
	if len(e.curOthers) > 0 {
		e.transport.Send(e.curOthers, types.WireMsg{Kind: types.KindAck, Cut: cut.Clone()})
	}
	e.ackCounts[e.id] = cut
	e.collectStable()
	return true
}

// collectStable garbage-collects every message slot acknowledged by the
// whole current view.
func (e *Endpoint) collectStable() {
	for _, q := range e.curMembers {
		stable := -1
		for _, r := range e.curMembers {
			ack, ok := e.ackCounts[r]
			if !ok {
				return // someone has not acked at all yet
			}
			if c := ack[q]; stable == -1 || c < stable {
				stable = c
			}
		}
		if stable > 0 {
			e.curBuf(q).collect(stable)
		}
	}
}

// syncMsgOf returns sync_msg[q][cid], or nil.
func (e *Endpoint) syncMsgOf(q types.ProcID, cid types.StartChangeID) *types.SyncMsg {
	return e.syncMsgs[q][cid]
}
