package rsm_test

import (
	"fmt"
	"testing"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/rsm"
	"vsgm/internal/sim"
	"vsgm/internal/spec"
	"vsgm/internal/types"
)

// world wires one replica (over a KV store) per cluster member.
type world struct {
	c        *sim.Cluster
	replicas map[types.ProcID]*rsm.Replica
	stores   map[types.ProcID]*rsm.KVStore
}

func newWorld(t *testing.T, n int, seed int64, bootstrap func(types.ProcID) bool, opts ...func(*sim.Config)) *world {
	t.Helper()
	w := &world{
		replicas: make(map[types.ProcID]*rsm.Replica),
		stores:   make(map[types.ProcID]*rsm.KVStore),
	}
	cfg := sim.Config{
		Procs:           sim.ProcIDs(n),
		Latency:         sim.UniformLatency{Base: 10 * time.Millisecond, Jitter: 5 * time.Millisecond},
		MembershipRound: 10 * time.Millisecond,
		Seed:            seed,
		Suite:           spec.FullSuite(),
		OnAppEvent: func(p types.ProcID, ev core.Event) {
			if r := w.replicas[p]; r != nil {
				if err := r.HandleEvent(ev); err != nil {
					t.Errorf("replica %s: %v", p, err)
				}
			}
		},
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	c, err := sim.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.c = c
	for _, p := range c.Procs() {
		p := p
		store := rsm.NewKVStore()
		r, err := rsm.NewReplica(rsm.Config{
			ID:        p,
			Machine:   store,
			Bootstrap: bootstrap(p),
			Send: func(payload []byte) error {
				_, err := c.Send(p, payload)
				return err
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		w.replicas[p] = r
		w.stores[p] = store
	}
	return w
}

func (w *world) assertConverged(t *testing.T, members types.ProcSet) {
	t.Helper()
	var ref string
	var refProc types.ProcID
	for i, p := range members.Sorted() {
		if !w.replicas[p].Synced() {
			t.Fatalf("replica %s is not synced", p)
		}
		fp := w.stores[p].Fingerprint()
		if i == 0 {
			ref, refProc = fp, p
			continue
		}
		if fp != ref {
			t.Fatalf("state diverged: %s has %q, %s has %q", p, fp, refProc, ref)
		}
	}
}

func TestReplicationSteadyState(t *testing.T) {
	w := newWorld(t, 3, 31, func(types.ProcID) bool { return true })
	all := types.NewProcSet(w.c.Procs()...)
	if _, _, err := w.c.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		p := w.c.Procs()[i%3]
		if err := w.replicas[p].Propose(rsm.EncodeSet(fmt.Sprintf("k%d", i), string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.c.Run(); err != nil {
		t.Fatal(err)
	}
	w.assertConverged(t, all)
	if got := w.stores[w.c.Procs()[0]].Len(); got != 10 {
		t.Errorf("store has %d keys, want 10", got)
	}
}

func TestStateTransferToJoiner(t *testing.T) {
	// p02 is a late joiner with no state; the transitional set tells the
	// founders it needs a snapshot.
	w := newWorld(t, 3, 37, func(p types.ProcID) bool { return p != "p02" })
	procs := w.c.Procs()
	founders := types.NewProcSet(procs[0], procs[1])
	if _, _, err := w.c.ReconfigureTo(founders); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.replicas[procs[0]].Propose(rsm.EncodeSet(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.c.Run(); err != nil {
		t.Fatal(err)
	}
	if w.replicas[procs[2]].Synced() {
		t.Fatal("joiner should not be synced before joining")
	}

	all := types.NewProcSet(procs...)
	if _, _, err := w.c.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}
	if err := w.c.Run(); err != nil {
		t.Fatal(err)
	}
	w.assertConverged(t, all)
	if got, want := w.stores[procs[2]].Len(), 5; got != want {
		t.Errorf("joiner store has %d keys, want %d", got, want)
	}

	// The joiner participates after syncing.
	if err := w.replicas[procs[2]].Propose(rsm.EncodeSet("late", "yes")); err != nil {
		t.Fatal(err)
	}
	if err := w.c.Run(); err != nil {
		t.Fatal(err)
	}
	w.assertConverged(t, all)
	if v, ok := w.stores[procs[0]].Get("late"); !ok || v != "yes" {
		t.Errorf("founder store missing joiner's update, got %q ok=%v", v, ok)
	}
}

func TestNoStateTransferWhenMovingTogether(t *testing.T) {
	// When all members move together (T == members), Virtual Synchrony
	// guarantees identical state and the replicas skip the snapshot
	// exchange entirely — the paper's Section 4.1.2 motivation.
	w := newWorld(t, 3, 41, func(types.ProcID) bool { return true })
	all := types.NewProcSet(w.c.Procs()...)
	if _, _, err := w.c.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}
	if err := w.replicas[w.c.Procs()[0]].Propose(rsm.EncodeSet("a", "1")); err != nil {
		t.Fatal(err)
	}
	if err := w.c.Run(); err != nil {
		t.Fatal(err)
	}

	applied := make(map[types.ProcID]int64)
	for _, p := range w.c.Procs() {
		applied[p] = w.replicas[p].Applied()
	}
	// Same-membership reconfiguration: everyone moves together.
	if _, _, err := w.c.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}
	if err := w.c.Run(); err != nil {
		t.Fatal(err)
	}
	w.assertConverged(t, all)
	for _, p := range w.c.Procs() {
		if got := w.replicas[p].Applied(); got != applied[p] {
			t.Errorf("%s applied %d new commands across a together-move, want 0", p, got-applied[p])
		}
	}
}

func TestPartitionMergeAdoptsDeterministicState(t *testing.T) {
	w := newWorld(t, 4, 43, func(types.ProcID) bool { return true })
	procs := w.c.Procs()
	all := types.NewProcSet(procs...)
	if _, _, err := w.c.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}
	if err := w.replicas[procs[0]].Propose(rsm.EncodeSet("shared", "0")); err != nil {
		t.Fatal(err)
	}
	if err := w.c.Run(); err != nil {
		t.Fatal(err)
	}

	left := types.NewProcSet(procs[0], procs[1])
	right := types.NewProcSet(procs[2], procs[3])
	if _, err := w.c.Partition(left, right); err != nil {
		t.Fatal(err)
	}
	// Divergent updates on the two sides.
	if err := w.replicas[procs[0]].Propose(rsm.EncodeSet("left", "L")); err != nil {
		t.Fatal(err)
	}
	if err := w.replicas[procs[2]].Propose(rsm.EncodeSet("right", "R")); err != nil {
		t.Fatal(err)
	}
	if err := w.c.Run(); err != nil {
		t.Fatal(err)
	}
	w.assertConverged(t, left)
	w.assertConverged(t, right)

	// Merge: all four replicas converge on one deterministic state.
	w.c.HealConnectivity()
	if _, _, err := w.c.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}
	if err := w.c.Run(); err != nil {
		t.Fatal(err)
	}
	w.assertConverged(t, all)
}

func TestReplicationOverHierarchicalSyncs(t *testing.T) {
	// The full application stack (RSM over total order over the GCS) on top
	// of the two-tier hierarchy extension: a 6-member store with groups of
	// 2 converges through a partition/merge exactly like the flat
	// configuration.
	w := newWorld(t, 6, 53, func(types.ProcID) bool { return true },
		func(cfg *sim.Config) { cfg.HierarchyGroupSize = 2 })
	procs := w.c.Procs()
	all := types.NewProcSet(procs...)
	if _, _, err := w.c.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := w.replicas[procs[i]].Propose(rsm.EncodeSet(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.c.Run(); err != nil {
		t.Fatal(err)
	}
	w.assertConverged(t, all)

	left := types.NewProcSet(procs[0], procs[1], procs[2])
	right := types.NewProcSet(procs[3], procs[4], procs[5])
	if _, err := w.c.Partition(left, right); err != nil {
		t.Fatal(err)
	}
	if err := w.replicas[procs[0]].Propose(rsm.EncodeSet("left", "L")); err != nil {
		t.Fatal(err)
	}
	if err := w.replicas[procs[4]].Propose(rsm.EncodeSet("right", "R")); err != nil {
		t.Fatal(err)
	}
	if err := w.c.Run(); err != nil {
		t.Fatal(err)
	}
	w.c.HealConnectivity()
	if _, _, err := w.c.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}
	if err := w.c.Run(); err != nil {
		t.Fatal(err)
	}
	w.assertConverged(t, all)
	if got := w.stores[procs[0]].Len(); got < 6 {
		t.Errorf("store lost keys across the merge: %d", got)
	}
}

func TestReplicatedLogOrderIsIdentical(t *testing.T) {
	// The Log machine over the full stack: concurrent proposals from all
	// members append in exactly the same order at every replica.
	logs := make(map[types.ProcID]*rsm.Log)
	replicas := make(map[types.ProcID]*rsm.Replica)
	c, err := sim.NewCluster(sim.Config{
		Procs:           sim.ProcIDs(3),
		Latency:         sim.UniformLatency{Base: 10 * time.Millisecond, Jitter: 8 * time.Millisecond},
		MembershipRound: 10 * time.Millisecond,
		Seed:            61,
		OnAppEvent: func(p types.ProcID, ev core.Event) {
			if r := replicas[p]; r != nil {
				if err := r.HandleEvent(ev); err != nil {
					t.Errorf("replica %s: %v", p, err)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Procs() {
		p := p
		l := rsm.NewLog()
		logs[p] = l
		replicas[p], err = rsm.NewReplica(rsm.Config{
			ID: p, Machine: l, Bootstrap: true,
			Send: func(b []byte) error {
				_, err := c.Send(p, b)
				return err
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	all := types.NewProcSet(c.Procs()...)
	if _, _, err := c.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		for _, p := range c.Procs() {
			if err := replicas[p].Propose([]byte(fmt.Sprintf("%s-%d", p, round))); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.RunFor(3 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	want := 15
	ref := logs[c.Procs()[0]].Fingerprint()
	for _, p := range c.Procs() {
		if logs[p].Len() != want {
			t.Errorf("%s log has %d entries, want %d", p, logs[p].Len(), want)
		}
		if logs[p].Fingerprint() != ref {
			t.Errorf("%s log order diverged", p)
		}
	}
}

// TestStaleBelieverRejoinDoesNotClobberState is the stale-believer merge
// regression: a member reconfigured out of the group never sees the views
// that excluded it, so it still thinks it is synced in its ancient view.
// When readmitted, its transitional set is a singleton and it publishes its
// stale snapshot — which must LOSE to the surviving group's snapshot (the
// higher leaving-view identifier wins), not clobber every replica with
// state from before its exclusion.
func TestStaleBelieverRejoinDoesNotClobberState(t *testing.T) {
	w := newWorld(t, 4, 61, func(p types.ProcID) bool { return p != "p03" })
	procs := w.c.Procs()
	original := types.NewProcSet(procs[0], procs[1], procs[2])
	if _, _, err := w.c.ReconfigureTo(original); err != nil {
		t.Fatal(err)
	}
	if err := w.replicas[procs[0]].Propose(rsm.EncodeSet("survivor", "old")); err != nil {
		t.Fatal(err)
	}
	if err := w.c.Run(); err != nil {
		t.Fatal(err)
	}

	// Exclude p00. It keeps its old view and still believes it is synced.
	rehomed := types.NewProcSet(procs[1], procs[2], procs[3])
	if _, _, err := w.c.ReconfigureTo(rehomed); err != nil {
		t.Fatal(err)
	}
	if err := w.replicas[procs[1]].Propose(rsm.EncodeSet("survivor", "new")); err != nil {
		t.Fatal(err)
	}
	if err := w.replicas[procs[1]].Propose(rsm.EncodeSet("post-exclusion", "yes")); err != nil {
		t.Fatal(err)
	}
	if err := w.c.Run(); err != nil {
		t.Fatal(err)
	}
	if !w.replicas[procs[0]].Synced() {
		t.Fatal("excluded member should still believe it is synced (it never saw a newer view)")
	}

	// Readmit the stale believer alongside the survivors.
	all := types.NewProcSet(procs...)
	if _, _, err := w.c.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}
	if err := w.c.Run(); err != nil {
		t.Fatal(err)
	}
	w.assertConverged(t, all)
	for _, p := range procs {
		if v, ok := w.stores[p].Get("survivor"); !ok || v != "new" {
			t.Errorf("%s: survivor=%q ok=%v, want \"new\" — stale believer clobbered the group", p, v, ok)
		}
		if v, ok := w.stores[p].Get("post-exclusion"); !ok || v != "yes" {
			t.Errorf("%s: post-exclusion write lost (got %q ok=%v)", p, v, ok)
		}
	}
}
