package rsm

import (
	"encoding/json"
	"fmt"

	"vsgm/internal/types"
)

// Log is an append-only replicated log: the second canonical StateMachine.
// Every applied command is appended with its proposer, so all replicas hold
// the identical sequence — the textbook state-machine-replication shape.
type Log struct {
	entries []LogEntry
}

// LogEntry is one appended record.
type LogEntry struct {
	Proposer types.ProcID `json:"proposer"`
	Data     string       `json:"data"`
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Apply implements StateMachine: every command is appended verbatim.
func (l *Log) Apply(sender types.ProcID, cmd []byte) {
	l.entries = append(l.entries, LogEntry{Proposer: sender, Data: string(cmd)})
}

// Len returns the number of entries.
func (l *Log) Len() int { return len(l.entries) }

// Entry returns the i-th entry (0-based).
func (l *Log) Entry(i int) (LogEntry, bool) {
	if i < 0 || i >= len(l.entries) {
		return LogEntry{}, false
	}
	return l.entries[i], true
}

// Snapshot implements StateMachine.
func (l *Log) Snapshot() []byte {
	b, _ := json.Marshal(l.entries)
	return b
}

// Restore implements StateMachine.
func (l *Log) Restore(snapshot []byte) error {
	var entries []LogEntry
	if err := json.Unmarshal(snapshot, &entries); err != nil {
		return fmt.Errorf("log restore: %w", err)
	}
	l.entries = entries
	return nil
}

// Fingerprint renders the whole log deterministically.
func (l *Log) Fingerprint() string {
	out := ""
	for _, e := range l.entries {
		out += fmt.Sprintf("%s:%s|", e.Proposer, e.Data)
	}
	return out
}

var _ StateMachine = (*Log)(nil)
