// Package rsm implements state-machine replication on top of the virtually
// synchronous group multicast service, following the state-machine approach
// the paper cites as the prime consumer of Virtual Synchrony (Section
// 4.1.2): commands are disseminated in total order (internal/totalorder),
// and the Transitional Set delivered with each view tells replicas exactly
// who shares their state, so state transfer happens only when someone
// actually joined from a different view.
//
// Protocol. Replicas apply totally ordered commands to a deterministic
// state machine. At a view change, the total-order layer's boundary flush
// plus Virtual Synchrony guarantee that all members of the transitional set
// T have applied the identical command sequence. If T equals the new view's
// membership, everyone moved together and no synchronization is needed —
// this is precisely the "costly exchange avoided" benefit of Virtual
// Synchrony. Otherwise the view starts in a sync phase: proposals are
// queued, the minimum-identifier synced member of each transitional set
// multicasts a snapshot tagged with the identifier of the view it is
// leaving, and the snapshot from the highest leaving view becomes the
// authoritative state everyone adopts (ties broken by total order — a
// deterministic partition-merge rule). The leaving-view tag is what makes
// merges safe against stale believers: a member that was reconfigured out
// of the group long ago still thinks it is synced in its ancient view, and
// when readmitted its transitional set is a singleton, so it publishes —
// but its leaving-view identifier is older than the surviving group's, so
// its snapshot is superseded rather than adopted. View identifiers are
// monotonically increasing per group (Section 3.1), which makes "highest
// leaving view" exactly "most recent state".
package rsm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"vsgm/internal/core"
	"vsgm/internal/totalorder"
	"vsgm/internal/types"
)

// StateMachine is the deterministic application state the replicas manage.
type StateMachine interface {
	// Apply executes one command.
	Apply(sender types.ProcID, cmd []byte)
	// Snapshot serializes the complete state.
	Snapshot() []byte
	// Restore replaces the state with a previously taken snapshot.
	Restore(snapshot []byte) error
}

const (
	tagCmd   byte = 1
	tagState byte = 2
)

// Config parameterizes a replica.
type Config struct {
	// ID is the replica's process identifier; required.
	ID types.ProcID
	// Send multicasts a raw payload through the replica's GCS end-point;
	// required.
	Send totalorder.SendFunc
	// Machine is the replicated state machine; required.
	Machine StateMachine
	// Bootstrap marks the replica as initially holding authoritative state
	// (the group founder). Non-bootstrap replicas wait for a state
	// transfer before applying commands.
	Bootstrap bool
	// Quorum, when positive, puts the replica in primary-component mode:
	// a view with fewer than Quorum members is a minority view, and a
	// replica passing through one is demoted — it stops applying commands
	// (so nothing it acknowledges can later be lost to a merge) and loses
	// snapshot-publisher eligibility until it restores from a member that
	// stayed in the primary component. Zero keeps the classic behavior
	// where every view is authoritative and partition merges adopt the
	// first snapshot in total order, whichever side it came from.
	Quorum int
	// OnApply observes each applied command; optional.
	OnApply func(sender types.ProcID, cmd []byte)
}

// Replica is one member of the replicated state machine. Drive it by
// feeding every event of the underlying GCS end-point to HandleEvent. Not
// safe for concurrent use.
type Replica struct {
	id      types.ProcID
	machine StateMachine
	onApply func(types.ProcID, []byte)

	session *totalorder.Session

	view    types.View
	synced  bool
	syncing bool // view started with joiners; waiting for the first snapshot
	adopted int64 // leaving-view id of the snapshot adopted this view; -1 none
	quorum  int
	primary bool // current view has >= quorum members (always true at quorum 0)
	demoted bool // passed through a minority view since last holding authority
	queue   [][]byte
	err     error

	applied int64
}

// NewReplica constructs a replica.
func NewReplica(cfg Config) (*Replica, error) {
	if cfg.ID == "" || cfg.Send == nil || cfg.Machine == nil {
		return nil, errors.New("rsm: config requires ID, Send, and Machine")
	}
	r := &Replica{
		id:      cfg.ID,
		machine: cfg.Machine,
		onApply: cfg.OnApply,
		view:    types.InitialView(cfg.ID),
		synced:  cfg.Bootstrap,
		adopted: -1,
		quorum:  cfg.Quorum,
		primary: true,
	}
	var err error
	r.session, err = totalorder.New(cfg.ID, cfg.Send, r.onOrdered, r.onView)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// ID returns the replica's identifier.
func (r *Replica) ID() types.ProcID { return r.id }

// Synced reports whether the replica holds authoritative state.
func (r *Replica) Synced() bool { return r.synced }

// Authoritative reports whether the replica may serve and acknowledge
// commands right now: it is synced, its current view meets the quorum, and
// it has not been demoted by passing through a minority view. At quorum 0
// this is identical to Synced.
func (r *Replica) Authoritative() bool { return r.synced && r.primary && !r.demoted }

// Applied returns the number of commands applied so far.
func (r *Replica) Applied() int64 { return r.applied }

// CurrentView returns the view the replica operates in.
func (r *Replica) CurrentView() types.View { return r.view.Clone() }

// HandleEvent feeds one event from the underlying GCS end-point and then
// retries any queued proposals.
func (r *Replica) HandleEvent(ev core.Event) error {
	if err := r.session.HandleEvent(ev); err != nil {
		return err
	}
	r.flushQueue()
	if r.err != nil {
		err := r.err
		r.err = nil
		return err
	}
	return nil
}

// Propose submits a command. During a sync phase or a view change the
// command is queued and sent as soon as the group is ready.
func (r *Replica) Propose(cmd []byte) error {
	buf := make([]byte, 1+len(cmd))
	buf[0] = tagCmd
	copy(buf[1:], cmd)
	if r.syncing {
		r.queue = append(r.queue, buf)
		return nil
	}
	if err := r.session.Send(buf); err != nil {
		if errors.Is(err, totalorder.ErrBlocked) {
			r.queue = append(r.queue, buf)
			return nil
		}
		return err
	}
	return nil
}

func (r *Replica) flushQueue() {
	if r.syncing {
		return
	}
	for len(r.queue) > 0 {
		if err := r.session.Send(r.queue[0]); err != nil {
			return // still blocked; retry on the next event
		}
		r.queue = r.queue[1:]
	}
}

// onOrdered receives totally ordered messages from the session.
func (r *Replica) onOrdered(sender types.ProcID, payload []byte) {
	if len(payload) == 0 {
		return
	}
	switch payload[0] {
	case tagCmd:
		if !r.synced {
			return // awaiting state transfer; the snapshot covers this command
		}
		if !r.primary || r.demoted {
			// Primary-component mode: commands ordered in (or after) a
			// minority view are not applied here, so nothing this replica
			// acknowledged can be silently dropped by the eventual merge.
			return
		}
		cmd := payload[1:]
		r.machine.Apply(sender, cmd)
		r.applied++
		if r.onApply != nil {
			r.onApply(sender, cmd)
		}
	case tagState:
		if len(payload) < 1+8 {
			return // malformed; ignore deterministically
		}
		leavingID := int64(binary.BigEndian.Uint64(payload[1:9]))
		snap := payload[9:]
		switch {
		case r.syncing:
			// The first snapshot in total order is adopted by everyone —
			// including previously synced members, which makes partition
			// merges deterministic. In primary-component mode only undemoted
			// members publish, so the adopted state is always a primary
			// component's.
			if err := r.machine.Restore(snap); err == nil {
				r.synced = true
				r.syncing = false
				r.demoted = false
				r.adopted = leavingID
			}
		case r.adopted >= 0 && leavingID > r.adopted:
			// A concurrent publisher left a more recent view than the one we
			// adopted from: it is more up to date (view identifiers are
			// monotone per group), so its snapshot supersedes. This is how a
			// stale believer's early snapshot gets corrected within the same
			// sync phase before any acknowledgment can rest on it.
			if err := r.machine.Restore(snap); err == nil {
				r.adopted = leavingID
			}
		}
	}
}

// onView handles a view boundary: all transitional-set members now agree on
// the applied command sequence. If someone joined from another view, enter
// the sync phase and have the minimum synced member of T publish state.
func (r *Replica) onView(v types.View, trans types.ProcSet) {
	leaving := r.view.ID // the view whose state a publisher would be sharing
	r.view = v.Clone()
	r.adopted = -1 // snapshot adoption is per sync phase
	r.primary = r.quorum <= 0 || v.Members.Len() >= r.quorum
	if !r.primary {
		// Minority view: freeze. No commands are applied (see onOrdered), no
		// snapshot is published, and no sync phase runs — the replica waits
		// to rejoin the primary component and restore from it.
		r.demoted = true
		r.syncing = false
		return
	}
	movedTogether := trans != nil && trans.Equal(v.Members)
	if movedTogether {
		// Virtual Synchrony at work: everyone's state is already
		// identical; no exchange needed.
		r.syncing = false
		return
	}
	r.syncing = true
	if r.synced && !r.demoted && trans != nil && trans.Min() == r.id {
		snap := r.machine.Snapshot()
		buf := make([]byte, 1+8+len(snap))
		buf[0] = tagState
		binary.BigEndian.PutUint64(buf[1:9], uint64(leaving))
		copy(buf[9:], snap)
		if err := r.session.Send(buf); err != nil {
			// The view just arrived, so the end-point cannot be blocked; a
			// failure here is surfaced through the next HandleEvent call.
			r.err = fmt.Errorf("rsm: state transfer send: %w", err)
		}
	}
}
