// Package rsm implements state-machine replication on top of the virtually
// synchronous group multicast service, following the state-machine approach
// the paper cites as the prime consumer of Virtual Synchrony (Section
// 4.1.2): commands are disseminated in total order (internal/totalorder),
// and the Transitional Set delivered with each view tells replicas exactly
// who shares their state, so state transfer happens only when someone
// actually joined from a different view.
//
// Protocol. Replicas apply totally ordered commands to a deterministic
// state machine. At a view change, the total-order layer's boundary flush
// plus Virtual Synchrony guarantee that all members of the transitional set
// T have applied the identical command sequence. If T equals the new view's
// membership, everyone moved together and no synchronization is needed —
// this is precisely the "costly exchange avoided" benefit of Virtual
// Synchrony. Otherwise the view starts in a sync phase: proposals are
// queued, the minimum-identifier synced member of each transitional set
// multicasts a snapshot, and the first snapshot in total order becomes the
// authoritative state everyone adopts (a deterministic partition-merge
// rule). The sync phase ends when that snapshot is delivered.
package rsm

import (
	"errors"
	"fmt"

	"vsgm/internal/core"
	"vsgm/internal/totalorder"
	"vsgm/internal/types"
)

// StateMachine is the deterministic application state the replicas manage.
type StateMachine interface {
	// Apply executes one command.
	Apply(sender types.ProcID, cmd []byte)
	// Snapshot serializes the complete state.
	Snapshot() []byte
	// Restore replaces the state with a previously taken snapshot.
	Restore(snapshot []byte) error
}

const (
	tagCmd   byte = 1
	tagState byte = 2
)

// Config parameterizes a replica.
type Config struct {
	// ID is the replica's process identifier; required.
	ID types.ProcID
	// Send multicasts a raw payload through the replica's GCS end-point;
	// required.
	Send totalorder.SendFunc
	// Machine is the replicated state machine; required.
	Machine StateMachine
	// Bootstrap marks the replica as initially holding authoritative state
	// (the group founder). Non-bootstrap replicas wait for a state
	// transfer before applying commands.
	Bootstrap bool
	// OnApply observes each applied command; optional.
	OnApply func(sender types.ProcID, cmd []byte)
}

// Replica is one member of the replicated state machine. Drive it by
// feeding every event of the underlying GCS end-point to HandleEvent. Not
// safe for concurrent use.
type Replica struct {
	id      types.ProcID
	machine StateMachine
	onApply func(types.ProcID, []byte)

	session *totalorder.Session

	view    types.View
	synced  bool
	syncing bool // view started with joiners; waiting for the first snapshot
	queue   [][]byte
	err     error

	applied int64
}

// NewReplica constructs a replica.
func NewReplica(cfg Config) (*Replica, error) {
	if cfg.ID == "" || cfg.Send == nil || cfg.Machine == nil {
		return nil, errors.New("rsm: config requires ID, Send, and Machine")
	}
	r := &Replica{
		id:      cfg.ID,
		machine: cfg.Machine,
		onApply: cfg.OnApply,
		view:    types.InitialView(cfg.ID),
		synced:  cfg.Bootstrap,
	}
	var err error
	r.session, err = totalorder.New(cfg.ID, cfg.Send, r.onOrdered, r.onView)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// ID returns the replica's identifier.
func (r *Replica) ID() types.ProcID { return r.id }

// Synced reports whether the replica holds authoritative state.
func (r *Replica) Synced() bool { return r.synced }

// Applied returns the number of commands applied so far.
func (r *Replica) Applied() int64 { return r.applied }

// CurrentView returns the view the replica operates in.
func (r *Replica) CurrentView() types.View { return r.view.Clone() }

// HandleEvent feeds one event from the underlying GCS end-point and then
// retries any queued proposals.
func (r *Replica) HandleEvent(ev core.Event) error {
	if err := r.session.HandleEvent(ev); err != nil {
		return err
	}
	r.flushQueue()
	if r.err != nil {
		err := r.err
		r.err = nil
		return err
	}
	return nil
}

// Propose submits a command. During a sync phase or a view change the
// command is queued and sent as soon as the group is ready.
func (r *Replica) Propose(cmd []byte) error {
	buf := make([]byte, 1+len(cmd))
	buf[0] = tagCmd
	copy(buf[1:], cmd)
	if r.syncing {
		r.queue = append(r.queue, buf)
		return nil
	}
	if err := r.session.Send(buf); err != nil {
		if errors.Is(err, totalorder.ErrBlocked) {
			r.queue = append(r.queue, buf)
			return nil
		}
		return err
	}
	return nil
}

func (r *Replica) flushQueue() {
	if r.syncing {
		return
	}
	for len(r.queue) > 0 {
		if err := r.session.Send(r.queue[0]); err != nil {
			return // still blocked; retry on the next event
		}
		r.queue = r.queue[1:]
	}
}

// onOrdered receives totally ordered messages from the session.
func (r *Replica) onOrdered(sender types.ProcID, payload []byte) {
	if len(payload) == 0 {
		return
	}
	switch payload[0] {
	case tagCmd:
		if !r.synced {
			return // awaiting state transfer; the snapshot covers this command
		}
		cmd := payload[1:]
		r.machine.Apply(sender, cmd)
		r.applied++
		if r.onApply != nil {
			r.onApply(sender, cmd)
		}
	case tagState:
		if r.syncing {
			// The first snapshot in total order is authoritative for
			// everyone — including previously synced members, which makes
			// partition merges deterministic.
			if err := r.machine.Restore(payload[1:]); err == nil {
				r.synced = true
				r.syncing = false
			}
		}
	}
}

// onView handles a view boundary: all transitional-set members now agree on
// the applied command sequence. If someone joined from another view, enter
// the sync phase and have the minimum synced member of T publish state.
func (r *Replica) onView(v types.View, trans types.ProcSet) {
	r.view = v.Clone()
	movedTogether := trans != nil && trans.Equal(v.Members)
	if movedTogether {
		// Virtual Synchrony at work: everyone's state is already
		// identical; no exchange needed.
		r.syncing = false
		return
	}
	r.syncing = true
	if r.synced && trans != nil && trans.Min() == r.id {
		snap := r.machine.Snapshot()
		buf := make([]byte, 1+len(snap))
		buf[0] = tagState
		copy(buf[1:], snap)
		if err := r.session.Send(buf); err != nil {
			// The view just arrived, so the end-point cannot be blocked; a
			// failure here is surfaced through the next HandleEvent call.
			r.err = fmt.Errorf("rsm: state transfer send: %w", err)
		}
	}
}
