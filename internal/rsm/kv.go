package rsm

import (
	"encoding/json"
	"fmt"
	"sort"

	"vsgm/internal/types"
)

// KVStore is a replicated key-value map: the canonical StateMachine used by
// the examples and tests. Commands are JSON-encoded KVCommand values.
type KVStore struct {
	data map[string]string
}

// KVCommand is one key-value operation.
type KVCommand struct {
	Op    string `json:"op"` // "set" or "del"
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
}

// NewKVStore returns an empty store.
func NewKVStore() *KVStore {
	return &KVStore{data: make(map[string]string)}
}

// EncodeSet returns the command that sets key to value.
func EncodeSet(key, value string) []byte {
	b, _ := json.Marshal(KVCommand{Op: "set", Key: key, Value: value})
	return b
}

// EncodeDel returns the command that deletes key.
func EncodeDel(key string) []byte {
	b, _ := json.Marshal(KVCommand{Op: "del", Key: key})
	return b
}

// Apply implements StateMachine. Malformed commands are ignored (a replica
// must never diverge by handling garbage differently from its peers, and
// ignoring is deterministic).
func (s *KVStore) Apply(_ types.ProcID, cmd []byte) {
	var c KVCommand
	if err := json.Unmarshal(cmd, &c); err != nil {
		return
	}
	switch c.Op {
	case "set":
		s.data[c.Key] = c.Value
	case "del":
		delete(s.data, c.Key)
	}
}

// Get returns the value for key.
func (s *KVStore) Get(key string) (string, bool) {
	v, ok := s.data[key]
	return v, ok
}

// Len returns the number of keys.
func (s *KVStore) Len() int { return len(s.data) }

// Keys returns the keys in sorted order.
func (s *KVStore) Keys() []string {
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot implements StateMachine.
func (s *KVStore) Snapshot() []byte {
	b, _ := json.Marshal(s.data)
	return b
}

// Restore implements StateMachine.
func (s *KVStore) Restore(snapshot []byte) error {
	data := make(map[string]string)
	if err := json.Unmarshal(snapshot, &data); err != nil {
		return fmt.Errorf("kv restore: %w", err)
	}
	s.data = data
	return nil
}

// Fingerprint returns a deterministic rendering of the whole store,
// convenient for comparing replica states in tests.
func (s *KVStore) Fingerprint() string {
	keys := s.Keys()
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%s;", k, s.data[k])
	}
	return out
}

var _ StateMachine = (*KVStore)(nil)
