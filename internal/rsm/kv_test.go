package rsm

import (
	"testing"

	"vsgm/internal/types"
)

func TestKVStoreApplyAndQuery(t *testing.T) {
	s := NewKVStore()
	s.Apply("p", EncodeSet("a", "1"))
	s.Apply("p", EncodeSet("b", "2"))
	s.Apply("p", EncodeSet("a", "override"))
	s.Apply("p", EncodeDel("b"))

	if v, ok := s.Get("a"); !ok || v != "override" {
		t.Errorf("a = (%q, %v)", v, ok)
	}
	if _, ok := s.Get("b"); ok {
		t.Error("b survived deletion")
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
	if got := s.Keys(); len(got) != 1 || got[0] != "a" {
		t.Errorf("keys = %v", got)
	}
}

func TestKVStoreIgnoresMalformedCommands(t *testing.T) {
	s := NewKVStore()
	s.Apply("p", []byte("not json"))
	s.Apply("p", []byte(`{"op":"unknown","key":"k"}`))
	if s.Len() != 0 {
		t.Errorf("malformed commands mutated state: %q", s.Fingerprint())
	}
}

func TestKVStoreSnapshotRoundTrip(t *testing.T) {
	s := NewKVStore()
	s.Apply("p", EncodeSet("x", "1"))
	s.Apply("p", EncodeSet("y", "2"))

	snap := s.Snapshot()
	s2 := NewKVStore()
	s2.Apply("p", EncodeSet("junk", "gone"))
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if s2.Fingerprint() != s.Fingerprint() {
		t.Fatalf("restored %q, want %q", s2.Fingerprint(), s.Fingerprint())
	}
	if _, ok := s2.Get("junk"); ok {
		t.Error("restore did not replace the state")
	}
}

func TestKVStoreRestoreRejectsGarbage(t *testing.T) {
	s := NewKVStore()
	s.Apply("p", EncodeSet("keep", "me"))
	if err := s.Restore([]byte("not a snapshot")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if v, ok := s.Get("keep"); !ok || v != "me" {
		t.Error("failed restore corrupted the state")
	}
}

func TestKVStoreFingerprintIsDeterministic(t *testing.T) {
	a := NewKVStore()
	b := NewKVStore()
	a.Apply("p", EncodeSet("x", "1"))
	a.Apply("p", EncodeSet("y", "2"))
	b.Apply("p", EncodeSet("y", "2"))
	b.Apply("p", EncodeSet("x", "1"))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ for equal states: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
}

func TestNewReplicaValidation(t *testing.T) {
	send := func([]byte) error { return nil }
	if _, err := NewReplica(Config{Send: send, Machine: NewKVStore()}); err == nil {
		t.Error("missing ID accepted")
	}
	if _, err := NewReplica(Config{ID: "p", Machine: NewKVStore()}); err == nil {
		t.Error("missing Send accepted")
	}
	if _, err := NewReplica(Config{ID: "p", Send: send}); err == nil {
		t.Error("missing Machine accepted")
	}
	r, err := NewReplica(Config{ID: "p", Send: send, Machine: NewKVStore(), Bootstrap: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.ID() != "p" || !r.Synced() || r.Applied() != 0 {
		t.Error("fresh replica state wrong")
	}
	if !r.CurrentView().Equal(types.InitialView("p")) {
		t.Errorf("view = %s", r.CurrentView())
	}
}

func TestLogStateMachine(t *testing.T) {
	l := NewLog()
	l.Apply("a", []byte("one"))
	l.Apply("b", []byte("two"))
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	if e, ok := l.Entry(0); !ok || e.Proposer != "a" || e.Data != "one" {
		t.Fatalf("entry 0 = %+v", e)
	}
	if _, ok := l.Entry(5); ok {
		t.Fatal("out-of-range entry reported present")
	}

	snap := l.Snapshot()
	l2 := NewLog()
	l2.Apply("junk", []byte("gone"))
	if err := l2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if l2.Fingerprint() != l.Fingerprint() {
		t.Fatalf("restored %q, want %q", l2.Fingerprint(), l.Fingerprint())
	}
	if err := l2.Restore([]byte("garbage")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}
