package obs

import (
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("vsgm_test_total", "help", L("node", "p00"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Same name+labels returns the same storage.
	if c2 := reg.Counter("vsgm_test_total", "help", L("node", "p00")); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Different labels are a different series.
	if c3 := reg.Counter("vsgm_test_total", "help", L("node", "p01")); c3 == c {
		t.Fatal("distinct labels shared a counter")
	}
	g := reg.Gauge("vsgm_test_gauge", "help")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestNilRegistryHandlesWork(t *testing.T) {
	var reg *Registry
	reg.Counter("x", "").Inc()
	reg.Gauge("y", "").Set(3)
	reg.Histogram("z", "", nil).Observe(0.5)
	reg.RegisterCollector("o", func() []Sample { return nil })
	reg.Detach("o")
	if s := reg.Snapshot(); len(s.Samples) != 0 {
		t.Fatal("nil registry produced samples")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 0.5, 1.5, 1.5, 3, 3, 3, 6, 6, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 10 {
		t.Fatalf("count = %d, want 10", s.Count)
	}
	if math.Abs(s.Sum-125) > 1e-9 {
		t.Fatalf("sum = %v, want 125", s.Sum)
	}
	// Rank 5 of 10 lands in the (2,4] bucket (cum before: 4, bucket: 3).
	p50 := s.Quantile(0.50)
	if p50 <= 2 || p50 > 4 {
		t.Fatalf("p50 = %v, want in (2,4]", p50)
	}
	// The +Inf bucket clamps to the largest finite bound.
	if p99 := s.Quantile(0.99); p99 != 8 {
		t.Fatalf("p99 = %v, want clamp to 8", p99)
	}
	if q := (HistogramSnapshot{Bounds: []float64{1}, Buckets: []int64{0, 0}}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

// TestConcurrentUpdatesAndSnapshots is the -race exercise: counters,
// gauges, and histograms updated from many goroutines while snapshots,
// Prometheus rendering, and JSON rendering run concurrently.
func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterCollector("side", func() []Sample {
		return []Sample{{Name: "vsgm_side_gauge", Kind: KindGauge, Value: 1}}
	})
	reg.RegisterStatus("side", func() any { return map[string]int{"x": 1} })
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("vsgm_conc_total", "c")
			g := reg.Gauge("vsgm_conc_gauge", "g")
			h := reg.Histogram("vsgm_conc_hist", "h", nil)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(float64(i%100) / 1000)
				if i%64 == 0 {
					// Churn registration from multiple goroutines too.
					reg.Counter("vsgm_conc_total", "c", L("w", string(rune('a'+w)))).Inc()
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = reg.Snapshot()
				var sb strings.Builder
				_ = reg.WritePrometheus(&sb)
				_ = reg.WriteJSON(&sb)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("vsgm_conc_total", "c").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if h := reg.Histogram("vsgm_conc_hist", "h", nil).Snapshot(); h.Count != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count, workers*iters)
	}
}

func TestDetachFreezesCollectorAndStatus(t *testing.T) {
	reg := NewRegistry()
	live := int64(1)
	var mu sync.Mutex
	reg.RegisterCollector("node/p00", func() []Sample {
		mu.Lock()
		defer mu.Unlock()
		return []Sample{{Name: "vsgm_live_value", Kind: KindGauge, Value: float64(live)}}
	})
	reg.RegisterStatus("node/p00", func() any {
		mu.Lock()
		defer mu.Unlock()
		return live
	})
	mu.Lock()
	live = 42
	mu.Unlock()
	reg.Detach("node/p00")
	mu.Lock()
	live = -1 // post-close mutation must not be visible
	mu.Unlock()
	snap := reg.Snapshot()
	found := false
	for _, s := range snap.Samples {
		if s.Name == "vsgm_live_value" {
			found = true
			if s.Value != 42 {
				t.Fatalf("frozen sample = %v, want 42", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("frozen collector sample missing from snapshot")
	}
	status, _ := reg.StatusSnapshot()
	if status["node/p00"] != int64(42) {
		t.Fatalf("frozen status = %v, want 42", status["node/p00"])
	}
	reg.Detach("node/p00") // idempotent
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("vsgm_frames_total", "Frames sent.", L("node", "p00")).Add(3)
	reg.Counter("vsgm_frames_total", "Frames sent.", L("node", "p01")).Add(5)
	reg.Gauge("vsgm_mem_bytes", "Resident bytes.").Set(1024)
	h := reg.Histogram("vsgm_lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE vsgm_frames_total counter",
		`vsgm_frames_total{node="p00"} 3`,
		`vsgm_frames_total{node="p01"} 5`,
		"# TYPE vsgm_mem_bytes gauge",
		"vsgm_mem_bytes 1024",
		"# TYPE vsgm_lat_seconds histogram",
		`vsgm_lat_seconds_bucket{le="0.1"} 1`,
		`vsgm_lat_seconds_bucket{le="1"} 2`,
		`vsgm_lat_seconds_bucket{le="+Inf"} 3`,
		"vsgm_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per metric name, even with several series.
	if n := strings.Count(out, "# TYPE vsgm_frames_total"); n != 1 {
		t.Errorf("TYPE header repeated %d times", n)
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("vsgm_x_total", "x").Inc()
	tr := NewTracer(reg)
	srv, err := ServeDebug("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "vsgm_x_total 1") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/statusz"); !strings.Contains(out, `"metrics"`) {
		t.Errorf("/statusz not JSON-shaped:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
	_ = get("/tracez")
}
