package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// SetHelp registers exposition help text for a metric name, for series that
// are emitted by collectors rather than registered directly.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.help[name]; !ok {
		r.help[name] = help
	}
}

// escapeLabel escapes a label value for the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// renderLabels renders {k="v",...} (sorted), or "" for no labels.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per metric name, counters and
// gauges as plain samples, histograms as cumulative _bucket series plus
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var lastName string
	writeHeader := func(name string, kind MetricKind) error {
		if name == lastName {
			return nil
		}
		lastName = name
		if help := r.Help(name); help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		return err
	}
	for _, s := range snap.Samples {
		kind := s.Kind
		if kind == 0 {
			kind = KindGauge
		}
		if err := writeHeader(s.Name, kind); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, renderLabels(s.Labels), formatValue(s.Value)); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		if err := writeHeader(h.Name, KindHistogram); err != nil {
			return err
		}
		cum := int64(0)
		for i, c := range h.Snap.Buckets {
			cum += c
			le := "+Inf"
			if i < len(h.Snap.Bounds) {
				le = strconv.FormatFloat(h.Snap.Bounds[i], 'g', -1, 64)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, renderLabels(h.Labels, L("le", le)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", h.Name, renderLabels(h.Labels), strconv.FormatFloat(h.Snap.Sum, 'g', -1, 64)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", h.Name, renderLabels(h.Labels), h.Snap.Count); err != nil {
			return err
		}
	}
	return nil
}

// jsonHistogram is the /statusz rendering of a histogram: totals plus the
// p50/p95/p99 estimates.
type jsonHistogram struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// WriteJSON renders the registry as one JSON object:
//
//	{"metrics": {"name{labels}": value, ...},
//	 "histograms": {"name{labels}": {count, sum, p50, p95, p99}, ...},
//	 "status": {"owner": <section>, ...}}
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	metrics := make(map[string]float64, len(snap.Samples))
	for _, s := range snap.Samples {
		metrics[seriesKey(s.Name, s.Labels)] = s.Value
	}
	hists := make(map[string]jsonHistogram, len(snap.Histograms))
	for _, h := range snap.Histograms {
		hists[seriesKey(h.Name, h.Labels)] = jsonHistogram{
			Count: h.Snap.Count,
			Sum:   h.Snap.Sum,
			P50:   h.Snap.Quantile(0.50),
			P95:   h.Snap.Quantile(0.95),
			P99:   h.Snap.Quantile(0.99),
		}
	}
	status, _ := r.StatusSnapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"metrics":    metrics,
		"histograms": hists,
		"status":     status,
	})
}
