package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"vsgm/internal/types"
)

// fakeClock gives the tracer a deterministic, hand-advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func view(id types.ViewID, startIDs map[types.ProcID]types.StartChangeID) types.View {
	return types.View{ID: id, StartID: startIDs}
}

func TestTracerSingleRoundSpan(t *testing.T) {
	reg := NewRegistry()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tr := NewTracer(reg, WithNow(clk.now))
	et := tr.ForEndpoint("c001")

	et.StartChange(types.StartChange{ID: 3, Trace: 0x2a})
	clk.advance(200 * time.Microsecond)
	et.SyncSent(3, 0x2a, false)
	clk.advance(700 * time.Microsecond)
	et.SyncReceived("c002", 3, 0x2a)
	clk.advance(900 * time.Microsecond)
	et.ViewInstalled(view(2, map[types.ProcID]types.StartChangeID{"c001": 3}))

	done := tr.Completed()
	if len(done) != 1 {
		t.Fatalf("completed spans = %d, want 1", len(done))
	}
	sp := done[0]
	if !sp.Completed || sp.Superseded {
		t.Fatalf("span flags = completed:%v superseded:%v", sp.Completed, sp.Superseded)
	}
	if sp.Trace != 0x2a || sp.CID != 3 || sp.View != 2 {
		t.Fatalf("span identity = trace:%x cid:%d view:%d", sp.Trace, sp.CID, sp.View)
	}
	if sp.SyncRounds != 1 || sp.SyncRecvs != 1 {
		t.Fatalf("rounds = %d recvs = %d, want 1/1", sp.SyncRounds, sp.SyncRecvs)
	}
	if want := 1800 * time.Microsecond; sp.Latency != want {
		t.Fatalf("latency = %v, want %v", sp.Latency, want)
	}
	kinds := make([]string, len(sp.Events))
	for i, ev := range sp.Events {
		kinds[i] = ev.Kind
	}
	if got := strings.Join(kinds, ","); got != "start_change,sync_send,sync_recv,view_install" {
		t.Fatalf("event order = %s", got)
	}
	if v := reg.Counter("vsgm_reconfig_single_round_total", "").Value(); v != 1 {
		t.Fatalf("single-round counter = %d, want 1", v)
	}
	if h := reg.Histogram("vsgm_view_change_latency_seconds", "", nil).Snapshot(); h.Count != 1 {
		t.Fatalf("latency histogram count = %d, want 1", h.Count)
	}
}

func TestTracerMultiRoundAndSupersede(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	et := tr.ForEndpoint("s00")

	// Span 1: superseded by a newer start_change before its view lands.
	et.StartChange(types.StartChange{ID: 1, Trace: 7})
	et.SyncSent(1, 7, false)
	et.StartChange(types.StartChange{ID: 2, Trace: 8})
	// Span 2: a watchdog resend makes it multi-round.
	et.SyncSent(2, 8, false)
	et.SyncSent(2, 8, true)
	et.ViewInstalled(view(5, map[types.ProcID]types.StartChangeID{"s00": 2}))

	done := tr.Completed()
	if len(done) != 2 {
		t.Fatalf("retired spans = %d, want 2", len(done))
	}
	if !done[0].Superseded || done[0].CID != 1 {
		t.Fatalf("first retired span: superseded:%v cid:%d", done[0].Superseded, done[0].CID)
	}
	if !done[1].Completed || done[1].SyncRounds != 2 {
		t.Fatalf("second span: completed:%v rounds:%d", done[1].Completed, done[1].SyncRounds)
	}
	if v := reg.Counter("vsgm_reconfig_multi_round_total", "").Value(); v != 1 {
		t.Fatalf("multi-round counter = %d, want 1", v)
	}
	if v := reg.Counter("vsgm_reconfigurations_total", "", L("outcome", "superseded")).Value(); v != 1 {
		t.Fatalf("superseded counter = %d, want 1", v)
	}
	if v := reg.Counter("vsgm_sync_sends_total", "", L("kind", "resend")).Value(); v != 1 {
		t.Fatalf("resend counter = %d, want 1", v)
	}
}

func TestTracerIgnoresMismatchedView(t *testing.T) {
	tr := NewTracer(nil)
	et := tr.ForEndpoint("c001")
	et.StartChange(types.StartChange{ID: 4})
	// A view echoing a different cid must not close the span.
	et.ViewInstalled(view(9, map[types.ProcID]types.StartChangeID{"c001": 3}))
	if p := tr.Pending(); len(p) != 1 || p[0].CID != 4 {
		t.Fatalf("pending = %+v, want the cid=4 span still open", p)
	}
	// Sync traffic for a stale cid is counted globally but not on the span.
	et.SyncSent(3, 0, false)
	if p := tr.Pending(); p[0].SyncRounds != 0 {
		t.Fatalf("stale sync send attributed to span: rounds=%d", p[0].SyncRounds)
	}
}

func TestTracerAdoptsTraceFromSync(t *testing.T) {
	tr := NewTracer(nil)
	et := tr.ForEndpoint("c001")
	// Oracle-driven membership stamps no trace on the start_change...
	et.StartChange(types.StartChange{ID: 2})
	// ...but a peer's sync can carry one learned from a server proposal.
	et.SyncReceived("c002", 2, 0x99)
	if p := tr.Pending(); p[0].Trace != 0x99 {
		t.Fatalf("trace not adopted from sync: %x", p[0].Trace)
	}
}

func TestTracerKeepBound(t *testing.T) {
	tr := NewTracer(nil, WithKeep(3))
	et := tr.ForEndpoint("c001")
	for i := 1; i <= 10; i++ {
		cid := types.StartChangeID(i)
		et.StartChange(types.StartChange{ID: cid})
		et.SyncSent(cid, 0, false)
		et.ViewInstalled(view(types.ViewID(i), map[types.ProcID]types.StartChangeID{"c001": cid}))
	}
	done := tr.Completed()
	if len(done) != 3 {
		t.Fatalf("retained = %d, want 3", len(done))
	}
	if done[0].CID != 8 || done[2].CID != 10 {
		t.Fatalf("ring kept wrong spans: %d..%d", done[0].CID, done[2].CID)
	}
}

func TestRenderTimeline(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr := NewTracer(nil, WithNow(clk.now))
	et := tr.ForEndpoint("c001")
	et.StartChange(types.StartChange{ID: 3, Trace: 0x2a})
	clk.advance(time.Millisecond)
	et.SyncSent(3, 0x2a, false)
	clk.advance(time.Millisecond)
	et.SyncReceived("c002", 3, 0x2a)
	clk.advance(time.Millisecond)
	et.ViewInstalled(view(2, map[types.ProcID]types.StartChangeID{"c001": 3}))
	// Leave a second span pending.
	tr.ForEndpoint("c002").StartChange(types.StartChange{ID: 3, Trace: 0x2a})

	var sb strings.Builder
	tr.RenderTimeline(&sb)
	out := sb.String()
	for _, want := range []string{
		"trace=000000000000002a c001 cid=3 -> view 2 in 3ms:",
		"start_change +0s",
		"sync_send +1ms",
		"sync_recv<-c002 +2ms",
		"view_install +3ms",
		"(sync_rounds=1)",
		"c002 cid=3 pending:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

// TestTracerConcurrency drives every tracer entry point from many goroutines
// under -race: spans opening/closing, global counters, and renders.
func TestTracerConcurrency(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, WithKeep(64))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep := types.ProcID("c00" + string(rune('0'+g)))
			et := tr.ForEndpoint(ep)
			for i := 1; i <= 200; i++ {
				cid := types.StartChangeID(i)
				et.StartChange(types.StartChange{ID: cid, Trace: uint64(i)})
				et.SyncSent(cid, uint64(i), false)
				et.SyncReceived("peer", cid, uint64(i))
				et.ViewInstalled(view(types.ViewID(i), map[types.ProcID]types.StartChangeID{ep: cid}))
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = tr.Completed()
				_ = tr.Pending()
				var sb strings.Builder
				tr.RenderTimeline(&sb)
			}
		}()
	}
	wg.Wait()
	if v := reg.Counter("vsgm_reconfigurations_total", "", L("outcome", "completed")).Value(); v != 8*200 {
		t.Fatalf("completed = %d, want %d", v, 8*200)
	}
}
