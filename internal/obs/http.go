package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the opt-in observability HTTP listener:
//
//	/metrics        Prometheus text exposition of the registry
//	/statusz        JSON: metrics, histogram quantiles, status sections
//	/tracez         plain-text reconfiguration timelines (when a Tracer is attached)
//	/debug/pprof/*  the standard pprof handlers
//
// It binds its own mux (never http.DefaultServeMux), so importing this
// package does not leak handlers into unrelated servers.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts the debug listener on addr ("127.0.0.1:0" picks an
// ephemeral port; read it back with Addr). tr may be nil.
func ServeDebug(addr string, reg *Registry, tr *Tracer) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	if tr != nil {
		mux.HandleFunc("/tracez", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			tr.RenderTimeline(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "vsgm debug listener: /metrics /statusz /tracez /debug/pprof/")
	})
	s := &DebugServer{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the listener's actual address.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *DebugServer) Close() error { return s.srv.Close() }
