// Package obs is the unified observability layer: a lock-cheap metrics
// registry (counters, gauges, bounded histograms with quantile snapshots), a
// protocol trace layer that timestamps every reconfiguration's
// start_change → sync-send → sync-recv → view-install timeline per
// end-point, and an exposition surface (Prometheus text format, JSON
// status, pprof) served by an opt-in debug HTTP listener.
//
// The registry absorbs the per-layer counters that previously lived as
// scattered struct fields in internal/live and internal/core: layers either
// allocate their counters directly from a Registry (the storage *is* the
// metric) or register a collector that snapshots an existing stats struct at
// scrape time. A collector can be frozen when its owner shuts down
// (Registry.Detach), so a closed node's final numbers remain scrapeable
// without touching the closed structs — which is what lets vsgm-live print
// stats after killing a server without racing its shutdown.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// MetricKind discriminates sample types in snapshots and exposition.
type MetricKind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter MetricKind = iota + 1
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a bounded-bucket distribution.
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing metric. Updates are a single atomic
// add; the registry lock is only taken once, at registration.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter contract to hold; the
// type does not enforce it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets are the default histogram bounds for latencies in
// seconds: 100µs up to 10s, roughly logarithmic.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a bounded-bucket distribution: a fixed set of upper bounds
// chosen at registration, one atomic count per bucket plus a running count
// and sum. Memory is constant regardless of how many observations arrive,
// and Observe is a bucket scan plus three atomic adds — cheap enough for
// per-message paths. Quantiles are estimated from the bucket counts by
// linear interpolation (the usual Prometheus-style estimate).
type Histogram struct {
	bounds  []float64      // finite upper bounds, ascending
	counts  []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(h.bounds)+1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough view of a histogram: counts are
// read bucket by bucket while writers may still be observing, so a snapshot
// taken mid-write can be off by the in-flight observation — fine for
// monitoring, and the reason Observe never takes a lock.
type HistogramSnapshot struct {
	Count   int64
	Sum     float64
	Bounds  []float64 // finite upper bounds
	Buckets []int64   // per-bucket (non-cumulative) counts; last is +Inf
}

// Snapshot reads the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Bounds: h.bounds,
	}
	s.Buckets = make([]int64, len(h.counts))
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the p-quantile (0 < p <= 1) by linear interpolation
// inside the bucket holding the target rank. Observations in the +Inf
// bucket clamp to the largest finite bound. Returns 0 for an empty
// histogram.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	total := int64(0)
	for _, c := range s.Buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	cum := int64(0)
	for i, c := range s.Buckets {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		if c == 0 {
			return upper
		}
		return lower + (upper-lower)*(rank-float64(cum))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Sample is one scraped value of a counter or gauge series. Collectors emit
// samples; snapshots and the Prometheus writer consume them.
type Sample struct {
	Name   string
	Kind   MetricKind
	Labels []Label
	Value  float64
}

// series is the registry's record of one registered metric.
type series struct {
	name   string
	help   string
	kind   MetricKind
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds the process's metrics. Registration (Counter, Gauge,
// Histogram, RegisterCollector, RegisterStatus) takes the registry lock;
// updates through the returned handles are lock-free atomics. A nil
// *Registry is valid everywhere and returns working (but unregistered)
// handles, so instrumented code never needs nil checks on its hot paths.
type Registry struct {
	mu         sync.RWMutex
	series     map[string]*series // canonical series key -> metric
	order      []string           // registration order of series keys
	help       map[string]string  // metric name -> help (first registration wins)
	collectors map[string]func() []Sample
	frozen     map[string][]Sample
	status     map[string]func() any
	frozenStat map[string]any
	statOrder  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series:     make(map[string]*series),
		help:       make(map[string]string),
		collectors: make(map[string]func() []Sample),
		frozen:     make(map[string][]Sample),
		status:     make(map[string]func() any),
		frozenStat: make(map[string]any),
	}
}

// seriesKey renders the canonical identity of a series: name plus sorted
// labels. It sorts a copy, so callers' label slices are not reordered.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// register get-or-creates a series. It tolerates re-registration of the same
// key with the same kind (returning the existing metric) so restarted
// components can share a registry.
func (r *Registry) register(name, help string, kind MetricKind, labels []Label) *series {
	key := seriesKey(name, labels)
	r.mu.RLock()
	s, ok := r.series[key]
	r.mu.RUnlock()
	if ok {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok = r.series[key]; ok {
		return s
	}
	s = &series{name: name, help: help, kind: kind, labels: append([]Label(nil), labels...)}
	r.series[key] = s
	r.order = append(r.order, key)
	if _, ok := r.help[name]; !ok && help != "" {
		r.help[name] = help
	}
	return s
}

// Counter registers (or fetches) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return new(Counter)
	}
	s := r.register(name, help, KindCounter, labels)
	if s.c == nil {
		r.mu.Lock()
		if s.c == nil {
			s.c = new(Counter)
		}
		r.mu.Unlock()
	}
	return s.c
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	s := r.register(name, help, KindGauge, labels)
	if s.g == nil {
		r.mu.Lock()
		if s.g == nil {
			s.g = new(Gauge)
		}
		r.mu.Unlock()
	}
	return s.g
}

// Histogram registers (or fetches) a bounded histogram series. bounds are
// the finite ascending bucket upper bounds; nil selects DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	s := r.register(name, help, KindHistogram, labels)
	if s.h == nil {
		r.mu.Lock()
		if s.h == nil {
			s.h = newHistogram(bounds)
		}
		r.mu.Unlock()
	}
	return s.h
}

// RegisterCollector installs a scrape-time sample source under an owner key.
// The function is called on every snapshot/exposition; it should read its
// stats structs under their own locks and return quickly. Re-registering an
// owner replaces its collector (and clears any frozen samples).
func (r *Registry) RegisterCollector(owner string, fn func() []Sample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors[owner] = fn
	delete(r.frozen, owner)
}

// RegisterStatus installs a JSON-able status section (served under /statusz)
// under an owner key. Like collectors, status functions are evaluated at
// scrape time and can be frozen by Detach.
func (r *Registry) RegisterStatus(owner string, fn func() any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, seen := r.status[owner]; !seen {
		if _, frozenSeen := r.frozenStat[owner]; !frozenSeen {
			r.statOrder = append(r.statOrder, owner)
		}
	}
	r.status[owner] = fn
	delete(r.frozenStat, owner)
}

// Detach freezes an owner's collector and status section: each is evaluated
// one final time and the cached result is served from then on. Call it when
// the owning component shuts down, before its internals become unsafe to
// read; scrapes after that never touch the closed component. Detach is
// idempotent.
func (r *Registry) Detach(owner string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	fn := r.collectors[owner]
	sfn := r.status[owner]
	r.mu.Unlock()
	// Evaluate outside the registry lock: collectors take component locks.
	var samples []Sample
	if fn != nil {
		samples = fn()
	}
	var stat any
	if sfn != nil {
		stat = sfn()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if fn != nil && r.collectors[owner] != nil {
		r.frozen[owner] = samples
		delete(r.collectors, owner)
	}
	if sfn != nil && r.status[owner] != nil {
		r.frozenStat[owner] = stat
		delete(r.status, owner)
	}
}

// Snapshot returns every current sample: registered counters and gauges,
// histogram series (as HistogramSample entries), and collector output (live
// or frozen). The result is sorted by name then series key, so output is
// stable across scrapes.
type Snapshot struct {
	Samples    []Sample
	Histograms []HistogramSample
}

// HistogramSample pairs a histogram series with its snapshot.
type HistogramSample struct {
	Name   string
	Labels []Label
	Snap   HistogramSnapshot
}

// Snapshot collects all samples.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	keys := append([]string(nil), r.order...)
	collectors := make([]func() []Sample, 0, len(r.collectors))
	for _, fn := range r.collectors {
		collectors = append(collectors, fn)
	}
	frozen := make([][]Sample, 0, len(r.frozen))
	for _, ss := range r.frozen {
		frozen = append(frozen, ss)
	}
	r.mu.RUnlock()

	var snap Snapshot
	for _, key := range keys {
		r.mu.RLock()
		s := r.series[key]
		r.mu.RUnlock()
		if s == nil {
			continue
		}
		switch s.kind {
		case KindCounter:
			if s.c != nil {
				snap.Samples = append(snap.Samples, Sample{Name: s.name, Kind: KindCounter, Labels: s.labels, Value: float64(s.c.Value())})
			}
		case KindGauge:
			if s.g != nil {
				snap.Samples = append(snap.Samples, Sample{Name: s.name, Kind: KindGauge, Labels: s.labels, Value: float64(s.g.Value())})
			}
		case KindHistogram:
			if s.h != nil {
				snap.Histograms = append(snap.Histograms, HistogramSample{Name: s.name, Labels: s.labels, Snap: s.h.Snapshot()})
			}
		}
	}
	for _, fn := range collectors {
		snap.Samples = append(snap.Samples, fn()...)
	}
	for _, ss := range frozen {
		snap.Samples = append(snap.Samples, ss...)
	}
	sort.SliceStable(snap.Samples, func(i, j int) bool {
		a, b := snap.Samples[i], snap.Samples[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return seriesKey(a.Name, a.Labels) < seriesKey(b.Name, b.Labels)
	})
	sort.SliceStable(snap.Histograms, func(i, j int) bool {
		a, b := snap.Histograms[i], snap.Histograms[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return seriesKey(a.Name, a.Labels) < seriesKey(b.Name, b.Labels)
	})
	return snap
}

// Help returns the registered help string for a metric name.
func (r *Registry) Help(name string) string {
	if r == nil {
		return ""
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.help[name]
}

// StatusSnapshot evaluates every status section (live or frozen) and
// returns owner -> value, plus the registration order of owners.
func (r *Registry) StatusSnapshot() (map[string]any, []string) {
	if r == nil {
		return nil, nil
	}
	r.mu.RLock()
	fns := make(map[string]func() any, len(r.status))
	for k, fn := range r.status {
		fns[k] = fn
	}
	out := make(map[string]any, len(r.status)+len(r.frozenStat))
	for k, v := range r.frozenStat {
		out[k] = v
	}
	order := append([]string(nil), r.statOrder...)
	r.mu.RUnlock()
	for k, fn := range fns {
		out[k] = fn()
	}
	return out, order
}
