package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"vsgm/internal/types"
)

// The Tracer records one span per (end-point, start_change): the paper's
// reconfiguration unit. A span opens when the membership's start_change
// notification reaches the end-point, accumulates the end-point's sync sends
// and receives, and completes when the end-point installs the view whose
// startId echoes the span's cid. The headline claim of the client-server
// design is that the failure-free path closes each span after exactly ONE
// sync send — the synchronization round runs in parallel with the servers'
// membership round — so every span counts its sync rounds and the tracer
// flags spans that needed more (a watchdog resend or probe means frames were
// lost and the round was repaired, not free).
//
// Spans are stamped with the cluster-wide trace identifier the membership
// servers gossip in their proposals and notifications (zero when the
// membership source does not stamp, e.g. the controllable oracle), so one
// reconfiguration's timelines can be correlated across every end-point and
// server that took part.

// Trace event kinds, in the order the failure-free protocol emits them.
const (
	EvStartChange = "start_change"
	EvSyncSend    = "sync_send"
	EvSyncResend  = "sync_resend"
	EvSyncRecv    = "sync_recv"
	EvViewInstall = "view_install"
)

// TraceEvent is one timestamped step of a reconfiguration span.
type TraceEvent struct {
	Kind   string        `json:"kind"`
	Offset time.Duration `json:"offset"` // since the span's start_change
	Peer   types.ProcID  `json:"peer,omitempty"`
}

// ReconfigReport is one completed (or abandoned) reconfiguration span.
type ReconfigReport struct {
	Endpoint   types.ProcID        `json:"endpoint"`
	CID        types.StartChangeID `json:"cid"`
	Trace      uint64              `json:"trace"`
	View       types.ViewID        `json:"view,omitempty"`
	Start      time.Time           `json:"start"`
	Latency    time.Duration       `json:"latency"` // start_change -> view_install
	SyncRounds int                 `json:"sync_rounds"`
	SyncRecvs  int                 `json:"sync_recvs"`
	Completed  bool                `json:"completed"`
	Superseded bool                `json:"superseded"`
	Events     []TraceEvent        `json:"events"`
}

// Tracer collects reconfiguration spans and feeds the view-change latency
// histogram and reconfiguration counters of its registry. All methods are
// safe for concurrent use; the per-endpoint hook methods run under the
// owning node's state lock, so within one end-point the event order is the
// exact automaton order.
type Tracer struct {
	mu     sync.Mutex
	now    func() time.Time
	keep   int
	active map[types.ProcID]*ReconfigReport
	done   []*ReconfigReport // ring, most recent kept

	latency     *Histogram
	completed   *Counter
	superseded  *Counter
	singleRound *Counter
	multiRound  *Counter
	syncSends   *Counter
	syncResends *Counter
	syncRecvs   *Counter
}

// TracerOption tweaks a Tracer.
type TracerOption func(*Tracer)

// WithNow overrides the tracer's clock (the simulator passes its virtual
// clock so latencies are simulated time, not wall time).
func WithNow(now func() time.Time) TracerOption {
	return func(t *Tracer) { t.now = now }
}

// WithKeep bounds how many finished spans are retained (default 256).
func WithKeep(n int) TracerOption {
	return func(t *Tracer) { t.keep = n }
}

// NewTracer returns a tracer publishing its histogram and counters into reg
// (nil registers nothing; the tracer still records timelines).
func NewTracer(reg *Registry, opts ...TracerOption) *Tracer {
	t := &Tracer{
		now:    time.Now,
		keep:   256,
		active: make(map[types.ProcID]*ReconfigReport),

		latency: reg.Histogram("vsgm_view_change_latency_seconds",
			"Per end-point latency from start_change receipt to view installation.", nil),
		completed: reg.Counter("vsgm_reconfigurations_total",
			"Reconfiguration spans that completed with a view installation.", L("outcome", "completed")),
		superseded: reg.Counter("vsgm_reconfigurations_total",
			"Reconfiguration spans abandoned because a newer start_change superseded them.", L("outcome", "superseded")),
		singleRound: reg.Counter("vsgm_reconfig_single_round_total",
			"Completed reconfigurations that needed exactly one sync send (the paper's one-round property)."),
		multiRound: reg.Counter("vsgm_reconfig_multi_round_total",
			"Completed reconfigurations that needed more than one sync send (lost frames repaired by the watchdog)."),
		syncSends: reg.Counter("vsgm_sync_sends_total",
			"Synchronization messages committed and sent.", L("kind", "first")),
		syncResends: reg.Counter("vsgm_sync_sends_total",
			"Synchronization messages re-sent (watchdog probes and probe answers).", L("kind", "resend")),
		syncRecvs: reg.Counter("vsgm_sync_recvs_total",
			"Synchronization messages received while a change was pending."),
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// EndpointTrace is the tracer bound to one end-point. Its method set
// satisfies core.ProtocolTrace; the core package stays free of any obs
// dependency, the binding is purely structural.
type EndpointTrace struct {
	t  *Tracer
	ep types.ProcID
}

// ForEndpoint returns the per-endpoint hook to wire into core.Config.Trace.
func (t *Tracer) ForEndpoint(ep types.ProcID) *EndpointTrace {
	return &EndpointTrace{t: t, ep: ep}
}

// StartChange opens a span (superseding any span still pending for this
// end-point: the membership moved on, so the old change can never complete).
func (e *EndpointTrace) StartChange(sc types.StartChange) {
	t := e.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if old := t.active[e.ep]; old != nil {
		old.Superseded = true
		t.retireLocked(old)
		t.superseded.Inc()
	}
	t.active[e.ep] = &ReconfigReport{
		Endpoint: e.ep,
		CID:      sc.ID,
		Trace:    sc.Trace,
		Start:    t.now(),
		Events:   []TraceEvent{{Kind: EvStartChange}},
	}
}

// SyncSent records a committed sync send. resend marks watchdog resends and
// probe answers — repair traffic, which still counts as an extra round for
// the one-round accounting.
func (e *EndpointTrace) SyncSent(cid types.StartChangeID, trace uint64, resend bool) {
	t := e.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if resend {
		t.syncResends.Inc()
	} else {
		t.syncSends.Inc()
	}
	sp := t.active[e.ep]
	if sp == nil || sp.CID != cid {
		return
	}
	kind := EvSyncSend
	if resend {
		kind = EvSyncResend
	}
	sp.SyncRounds++
	if trace != 0 && sp.Trace == 0 {
		sp.Trace = trace
	}
	sp.Events = append(sp.Events, TraceEvent{Kind: kind, Offset: t.now().Sub(sp.Start)})
}

// SyncReceived records a peer's sync arriving while this end-point has a
// change pending.
func (e *EndpointTrace) SyncReceived(from types.ProcID, cid types.StartChangeID, trace uint64) {
	t := e.t
	t.mu.Lock()
	defer t.mu.Unlock()
	t.syncRecvs.Inc()
	sp := t.active[e.ep]
	if sp == nil {
		return
	}
	sp.SyncRecvs++
	if trace != 0 && sp.Trace == 0 {
		sp.Trace = trace
	}
	sp.Events = append(sp.Events, TraceEvent{Kind: EvSyncRecv, Offset: t.now().Sub(sp.Start), Peer: from})
}

// ViewInstalled completes the span whose cid the view echoes in its startId
// map, observing the view-change latency and the one-round verdict.
func (e *EndpointTrace) ViewInstalled(v types.View) {
	t := e.t
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := t.active[e.ep]
	if sp == nil || v.StartID[e.ep] != sp.CID {
		return
	}
	delete(t.active, e.ep)
	sp.Completed = true
	sp.View = v.ID
	sp.Latency = t.now().Sub(sp.Start)
	sp.Events = append(sp.Events, TraceEvent{Kind: EvViewInstall, Offset: sp.Latency})
	t.latency.Observe(sp.Latency.Seconds())
	t.completed.Inc()
	if sp.SyncRounds <= 1 {
		t.singleRound.Inc()
	} else {
		t.multiRound.Inc()
	}
	t.retireLocked(sp)
}

// retireLocked appends a finished span to the bounded ring.
func (t *Tracer) retireLocked(sp *ReconfigReport) {
	t.done = append(t.done, sp)
	if over := len(t.done) - t.keep; over > 0 {
		t.done = append(t.done[:0], t.done[over:]...)
	}
}

// Completed returns the retained finished spans (completed and superseded),
// oldest first.
func (t *Tracer) Completed() []ReconfigReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ReconfigReport, len(t.done))
	for i, sp := range t.done {
		cp := *sp
		cp.Events = append([]TraceEvent(nil), sp.Events...)
		out[i] = cp
	}
	return out
}

// Pending returns the spans still waiting for their view, one per end-point.
func (t *Tracer) Pending() []ReconfigReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ReconfigReport, 0, len(t.active))
	for _, sp := range t.active {
		cp := *sp
		cp.Events = append([]TraceEvent(nil), sp.Events...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// TimelineString renders the retained spans to a string — the form
// violation reports embed (see internal/soak).
func (t *Tracer) TimelineString() string {
	var b strings.Builder
	t.RenderTimeline(&b)
	return b.String()
}

// RenderTimeline writes the retained spans as one line per span:
//
//	trace=000000000000002a c001 cid=3 -> view 2 in 1.8ms: start_change +0s | sync_send +210µs | sync_recv<-c002 +900µs | view_install +1.8ms (sync_rounds=1)
//
// Completed spans come first (oldest first), then superseded ones, then any
// spans still pending.
func (t *Tracer) RenderTimeline(w io.Writer) {
	done := t.Completed()
	pending := t.Pending()
	line := func(sp ReconfigReport) {
		fmt.Fprintf(w, "trace=%016x %s cid=%d", sp.Trace, sp.Endpoint, sp.CID)
		switch {
		case sp.Completed:
			fmt.Fprintf(w, " -> view %d in %v:", sp.View, sp.Latency)
		case sp.Superseded:
			fmt.Fprintf(w, " superseded:")
		default:
			fmt.Fprintf(w, " pending:")
		}
		for i, ev := range sp.Events {
			if i > 0 {
				fmt.Fprint(w, " |")
			}
			if ev.Peer != "" {
				fmt.Fprintf(w, " %s<-%s +%v", ev.Kind, ev.Peer, ev.Offset)
			} else {
				fmt.Fprintf(w, " %s +%v", ev.Kind, ev.Offset)
			}
		}
		fmt.Fprintf(w, " (sync_rounds=%d)\n", sp.SyncRounds)
	}
	for _, sp := range done {
		if sp.Completed {
			line(sp)
		}
	}
	for _, sp := range done {
		if !sp.Completed {
			line(sp)
		}
	}
	for _, sp := range pending {
		line(sp)
	}
}
