package types

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ViewID identifies a membership view. The paper requires only a partial
// order with a least element vid0; we use totally ordered integers ("e.g.,
// integers" per Section 3.1), with InitialViewID as vid0.
type ViewID int64

// StartChangeID is the locally unique, monotonically increasing identifier
// carried by start_change notifications (Section 3.1). Identifiers issued to
// different processes are independent: they are never compared across
// processes, only echoed back inside the view's StartID map.
type StartChangeID int64

const (
	// InitialViewID is vid0, the identifier of every process's initial
	// singleton view.
	InitialViewID ViewID = 0

	// InitialStartChangeID is cid0, the smallest start-change identifier.
	InitialStartChangeID StartChangeID = 0
)

// View is the output of the membership service: an increasing identifier, a
// member set, and the startId function mapping each member to the identifier
// of the last start_change it received before this view (Section 3.1).
//
// Two views are the same view if and only if they consist of identical
// triples (Section 3.1, Section 9); use Key or Equal for identity, never the
// ID alone — a partitionable membership service may issue distinct concurrent
// views.
type View struct {
	ID      ViewID
	Members ProcSet
	StartID map[ProcID]StartChangeID

	// key caches the canonical triple key; views built through the
	// package's constructors carry it, zero-valued views compute it on
	// demand.
	key string
}

// InitialView returns v_p, the default singleton view every end-point starts
// in: ⟨vid0, {p}, {p → cid0}⟩.
func InitialView(p ProcID) View {
	v := View{
		ID:      InitialViewID,
		Members: NewProcSet(p),
		StartID: map[ProcID]StartChangeID{p: InitialStartChangeID},
	}
	v.key = computeViewKey(v)
	return v
}

// NewView constructs a view from its triple, copying both the member set and
// the startId map so the caller retains ownership of its arguments.
func NewView(id ViewID, members ProcSet, startID map[ProcID]StartChangeID) View {
	sid := make(map[ProcID]StartChangeID, len(startID))
	for p, c := range startID {
		sid[p] = c
	}
	v := View{ID: id, Members: members.Clone(), StartID: sid}
	v.key = computeViewKey(v)
	return v
}

// Clone returns a deep copy of v.
func (v View) Clone() View {
	c := NewView(v.ID, v.Members, v.StartID)
	return c
}

// Key returns a canonical string identifying the full view triple. Views are
// the same view iff their keys are equal.
func (v View) Key() string {
	if v.key != "" {
		return v.key
	}
	return computeViewKey(v)
}

func computeViewKey(v View) string {
	var b strings.Builder
	b.Grow(8 + 16*v.Members.Len())
	b.WriteString(strconv.FormatInt(int64(v.ID), 10))
	b.WriteByte('|')
	for i, p := range v.Members.Sorted() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(p))
		b.WriteByte('=')
		b.WriteString(strconv.FormatInt(int64(v.StartID[p]), 10))
	}
	return b.String()
}

// Equal reports whether v and w are the same view (identical triples).
func (v View) Equal(w View) bool {
	if v.ID != w.ID || !v.Members.Equal(w.Members) || len(v.StartID) != len(w.StartID) {
		return false
	}
	for p, c := range v.StartID {
		if wc, ok := w.StartID[p]; !ok || wc != c {
			return false
		}
	}
	return true
}

// Contains reports whether p is a member of v.
func (v View) Contains(p ProcID) bool { return v.Members.Contains(p) }

// String renders the view for logs and test failures.
func (v View) String() string {
	return fmt.Sprintf("view<%d %s>", v.ID, v.Members)
}

// StartChange records a start_change_p(cid, set) notification: the membership
// service's announcement that it is attempting to form a new view with the
// processes in Set (Section 3.1).
type StartChange struct {
	ID  StartChangeID
	Set ProcSet

	// Trace is the cluster-wide reconfiguration trace identifier stamped by
	// the membership servers so one reconfiguration's events can be
	// correlated across every end-point. Zero when the membership source
	// does not stamp (e.g. the controllable test oracle). It is
	// observability metadata: the algorithm never branches on it.
	Trace uint64
}

// Clone returns a deep copy of c.
func (c StartChange) Clone() StartChange {
	return StartChange{ID: c.ID, Set: c.Set.Clone(), Trace: c.Trace}
}

// Cut maps each process to the index of the last message from that process
// that the cut's owner commits to deliver before installing the next view
// (Section 5.2). Indices are 1-based; 0 means "no messages".
type Cut map[ProcID]int

// Clone returns an independent copy of c.
func (c Cut) Clone() Cut {
	out := make(Cut, len(c))
	for p, i := range c {
		out[p] = i
	}
	return out
}

// Max returns, for each process that appears in any of the cuts, the maximum
// committed index across all cuts. It implements the
// max_{r∈T} sync_msg[r].cut(q) computation used by the view-delivery
// precondition (Figure 10).
func MaxCut(cuts []Cut) Cut {
	out := make(Cut)
	for _, c := range cuts {
		for p, i := range c {
			if i > out[p] {
				out[p] = i
			}
		}
	}
	return out
}

// Equal reports whether two cuts commit exactly the same indices.
func (c Cut) Equal(d Cut) bool {
	if len(c) != len(d) {
		return false
	}
	for p, i := range c {
		if d[p] != i {
			return false
		}
	}
	return true
}

// String renders the cut in sorted process order.
func (c Cut) String() string {
	procs := make([]ProcID, 0, len(c))
	for p := range c {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	var b strings.Builder
	b.WriteByte('[')
	for i, p := range procs {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s:%d", p, c[p])
	}
	b.WriteByte(']')
	return b.String()
}
