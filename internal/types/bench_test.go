package types

import (
	"fmt"
	"testing"
)

func benchView(n int) View {
	members := NewProcSet()
	sid := make(map[ProcID]StartChangeID, n)
	for i := 0; i < n; i++ {
		p := ProcID(fmt.Sprintf("p%02d", i))
		members.Add(p)
		sid[p] = StartChangeID(i)
	}
	return NewView(7, members, sid)
}

func BenchmarkViewKeyCached(b *testing.B) {
	v := benchView(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.Key() == "" {
			b.Fatal("empty key")
		}
	}
}

func BenchmarkViewKeyComputed(b *testing.B) {
	v := benchView(32)
	raw := View{ID: v.ID, Members: v.Members, StartID: v.StartID} // no cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if raw.Key() == "" {
			b.Fatal("empty key")
		}
	}
}

func BenchmarkProcSetSorted(b *testing.B) {
	s := benchView(32).Members
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Sorted()) != 32 {
			b.Fatal("wrong size")
		}
	}
}

func BenchmarkMaxCut(b *testing.B) {
	cuts := make([]Cut, 8)
	for i := range cuts {
		c := make(Cut)
		for j := 0; j < 32; j++ {
			c[ProcID(fmt.Sprintf("p%02d", j))] = i*j + 1
		}
		cuts[i] = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(MaxCut(cuts)) != 32 {
			b.Fatal("wrong size")
		}
	}
}
