package types

import (
	"strings"
	"testing"
)

func TestMsgKindString(t *testing.T) {
	tests := []struct {
		kind MsgKind
		want string
	}{
		{KindView, "view_msg"},
		{KindApp, "app_msg"},
		{KindFwd, "fwd_msg"},
		{KindSync, "sync_msg"},
		{KindPropose, "propose_msg"},
		{KindMembProposal, "memb_proposal"},
		{MsgKind(99), "msg_kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("kind %d string = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestWireMsgSizeModel(t *testing.T) {
	v := NewView(1, NewProcSet("a", "b"), map[ProcID]StartChangeID{"a": 1, "b": 1})

	app := WireMsg{Kind: KindApp, App: AppMsg{Payload: make([]byte, 100)}}
	if got := app.Size(); got != 8+8+100 {
		t.Errorf("app size = %d", got)
	}

	fullSync := WireMsg{Kind: KindSync, CID: 1, View: v, Cut: Cut{"a": 1, "b": 2}}
	smallSync := WireMsg{Kind: KindSync, CID: 1, Small: true}
	if fullSync.Size() <= smallSync.Size() {
		t.Errorf("full sync (%d bytes) should exceed small sync (%d bytes)",
			fullSync.Size(), smallSync.Size())
	}

	// A view message grows with membership.
	small := WireMsg{Kind: KindView, View: v}
	big := WireMsg{Kind: KindView, View: NewView(1, NewProcSet("a", "b", "c", "d"),
		map[ProcID]StartChangeID{"a": 1, "b": 1, "c": 1, "d": 1})}
	if big.Size() <= small.Size() {
		t.Errorf("view size should grow with membership: %d vs %d", big.Size(), small.Size())
	}
}

func TestWireMsgString(t *testing.T) {
	v := InitialView("a")
	tests := []struct {
		m    WireMsg
		want string
	}{
		{WireMsg{Kind: KindApp, App: AppMsg{ID: 7}}, "app_msg(#7)"},
		{WireMsg{Kind: KindFwd, App: AppMsg{ID: 7}, Origin: "a", Index: 3}, "fwd_msg(#7 from a i=3)"},
		{WireMsg{Kind: KindSync, CID: 2, Small: true}, "sync_msg(cid=2 small)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("string = %q, want %q", got, tt.want)
		}
	}
	if got := (WireMsg{Kind: KindView, View: v}).String(); !strings.HasPrefix(got, "view_msg(") {
		t.Errorf("view msg string = %q", got)
	}
}

func TestMembProposalClone(t *testing.T) {
	p := &MembProposal{
		Attempt: 2,
		Servers: NewProcSet("s0", "s1"),
		MinVid:  7,
		Clients: map[ProcID]StartChangeID{"c0": 1},
	}
	c := p.Clone()
	c.Servers.Add("s2")
	c.Clients["c1"] = 9
	if p.Servers.Contains("s2") || len(p.Clients) != 1 {
		t.Fatal("clone shares structure")
	}
}
