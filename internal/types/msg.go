package types

import "fmt"

// MsgKind discriminates the wire messages exchanged between GCS end-points
// over the CO_RFIFO substrate (Figures 9 and 10).
type MsgKind int

const (
	// KindView is a view_msg(v): announces that subsequent application
	// messages from the sender were sent in view v.
	KindView MsgKind = iota + 1

	// KindApp is an original application message.
	KindApp

	// KindFwd is a forwarded application message, tagged with its original
	// sender, view, and FIFO index.
	KindFwd

	// KindSync is a synchronization message, tagged with the sender's
	// start-change identifier and carrying its current view and cut.
	KindSync

	// KindPropose is the identifier pre-agreement message used only by the
	// two-round baseline algorithm (internal/baseline): the extra round
	// that previously suggested virtual synchrony algorithms spend agreeing
	// on a globally unique identifier before exchanging synchronization
	// messages.
	KindPropose

	// KindMembProposal is a server-to-server membership proposal exchanged
	// by the dedicated membership servers (internal/membership ServerGroup).
	KindMembProposal

	// KindAck is a stability acknowledgment: the sender's per-member
	// delivered counts in its current view. When every view member has
	// acknowledged a message, it is stable and its buffer slot can be
	// garbage-collected (the mechanism Section 5.1 notes real
	// implementations need).
	KindAck

	// KindHeartbeat is a failure-detector heartbeat between membership
	// servers.
	KindHeartbeat

	// KindSyncBundle is an aggregated batch of synchronization messages
	// exchanged between group leaders in the two-tier hierarchy extension
	// (Section 9's future work, after Guo et al.).
	KindSyncBundle
)

// SyncEntry is one member's synchronization message inside a bundle.
type SyncEntry struct {
	From  ProcID
	CID   StartChangeID
	View  View
	Cut   Cut
	Small bool
}

// MembProposal is one membership server's proposal for an attempt of the
// one-round membership algorithm: the servers it believes are reachable, a
// floor for the next view identifier, and its local clients together with
// the start-change identifiers it last issued to them.
type MembProposal struct {
	Attempt int64
	Servers ProcSet
	MinVid  ViewID
	Clients map[ProcID]StartChangeID

	// Epochs carries the attach epoch under which each in-band-attached
	// local client is claimed (zero epochs — out-of-band registrations —
	// are omitted). Peers use it to arbitrate ownership after a failover:
	// a strictly higher epoch claim evicts a stale registration.
	Epochs map[ProcID]int64

	// Trace is the reconfiguration trace identifier for the attempt this
	// proposal belongs to. The initiating server mints it; peers adopting
	// the attempt adopt the trace with it. Observability metadata only.
	Trace uint64
}

// Clone returns a deep copy of the proposal.
func (p *MembProposal) Clone() *MembProposal {
	clients := make(map[ProcID]StartChangeID, len(p.Clients))
	for c, cid := range p.Clients {
		clients[c] = cid
	}
	var epochs map[ProcID]int64
	if len(p.Epochs) > 0 {
		epochs = make(map[ProcID]int64, len(p.Epochs))
		for c, e := range p.Epochs {
			epochs[c] = e
		}
	}
	return &MembProposal{
		Attempt: p.Attempt,
		Servers: p.Servers.Clone(),
		MinVid:  p.MinVid,
		Clients: clients,
		Epochs:  epochs,
		Trace:   p.Trace,
	}
}

// String returns the lowercase tag used in the paper's figures.
func (k MsgKind) String() string {
	switch k {
	case KindView:
		return "view_msg"
	case KindApp:
		return "app_msg"
	case KindFwd:
		return "fwd_msg"
	case KindSync:
		return "sync_msg"
	case KindPropose:
		return "propose_msg"
	case KindMembProposal:
		return "memb_proposal"
	case KindAck:
		return "ack_msg"
	case KindHeartbeat:
		return "heartbeat"
	case KindSyncBundle:
		return "sync_bundle"
	default:
		return fmt.Sprintf("msg_kind(%d)", int(k))
	}
}

// AppMsg is an application payload multicast through the service. ID is a
// globally unique identifier assigned at send time; it exists purely so
// tests and spec checkers can correlate send and deliver events, mirroring
// the history variables of Section 6.1.1.
type AppMsg struct {
	ID      int64
	Payload []byte
}

// WireMsg is a single message on a CO_RFIFO channel. Exactly the fields
// relevant to Kind are populated:
//
//   - KindView: View.
//   - KindApp:  App. (HistView/HistIndex carry the history tags Hv, Hi of
//     Section 6.1.1; they are consumed by spec checkers, never by the
//     algorithm itself.)
//   - KindFwd:  App, Origin, View, Index.
//   - KindSync: CID, View, Cut, and Small (the Section 5.2.4 optimization:
//     a cut-less "I am not in your transitional set" notice).
type WireMsg struct {
	Kind MsgKind

	View View // view_msg payload; sync/fwd view tag

	App AppMsg // app/fwd payload

	// Forwarded-message tags (KindFwd): original sender and 1-based FIFO
	// index of App within msgs[Origin][View].
	Origin ProcID
	Index  int

	// Synchronization-message tags (KindSync). Small is the Section 5.2.4
	// cut-less notice to processes outside the sender's view; ElideView is
	// the section's second optimization — the view is omitted because the
	// recipient can deduce it from the sender's preceding view_msg. Probe
	// marks a watchdog resend of an already-committed sync message: the
	// receiver answers a probe by resending its own latest sync directly to
	// the prober, so lost sync messages are repaired instead of wedging the
	// view change.
	CID       StartChangeID
	Cut       Cut
	Small     bool
	ElideView bool
	Probe     bool

	// Trace tags a sync message with the reconfiguration trace identifier
	// of the start_change that triggered it (KindSync only; zero when the
	// membership source stamps no trace). Observability metadata only —
	// excluded from Size(), whose byte model feeds the E9 experiment.
	Trace uint64

	// History tags (KindApp only; Section 6.1.1). Populated by the sending
	// end-point for verification purposes.
	HistView  View
	HistIndex int

	// Reach is the sender's reachability bitmap (KindHeartbeat only): the
	// set of servers the sender's failure detector currently believes
	// reachable, piggybacked on every heartbeat. Receivers feed it to the
	// gray-failure reconciliation — a peer whose bitmap excludes the
	// receiver cannot hear it, so the receiver downgrades the one-way link
	// instead of livelocking the one-round membership protocol. Heartbeat
	// frames coalesce newest-wins per link, which is exactly the right
	// semantics for a bitmap snapshot. Nil when the sender piggybacks
	// nothing (a legacy fixed-timeout deployment).
	Reach ProcSet

	// Membership-server proposal (KindMembProposal only).
	MembProp *MembProposal

	// Aggregated synchronization messages (KindSyncBundle only).
	Bundle []SyncEntry
}

// Size returns an approximate wire size in bytes for the message, used by
// the E9 sync-message-size experiment and the bandwidth metrics. The model
// charges 8 bytes per identifier/integer plus payload length; it is a
// deterministic proxy for a real encoding, not an encoding itself.
func (m WireMsg) Size() int {
	const word = 8
	n := word // kind
	switch m.Kind {
	case KindView:
		n += viewSize(m.View)
	case KindApp:
		n += word + len(m.App.Payload)
	case KindFwd:
		n += word + len(m.App.Payload) + word /* origin */ + viewSize(m.View) + word /* index */
	case KindSync:
		n += word // cid
		if !m.Small {
			if !m.ElideView {
				n += viewSize(m.View)
			}
			n += word * (1 + len(m.Cut)) // cut entries
		}
	case KindPropose:
		n += word // proposed identifier
	case KindMembProposal:
		if m.MembProp != nil {
			n += 2*word + m.MembProp.Servers.Len()*word + len(m.MembProp.Clients)*2*word + len(m.MembProp.Epochs)*2*word
		}
	case KindAck:
		n += word * (1 + len(m.Cut))
	case KindHeartbeat:
		// The piggybacked reachability bitmap: one word for the count plus
		// one per member (zero-cost when absent).
		if m.Reach != nil {
			n += word * (1 + m.Reach.Len())
		}
	case KindSyncBundle:
		for _, e := range m.Bundle {
			n += 2 * word // from + cid
			if !e.Small {
				n += viewSize(e.View) + word*(1+len(e.Cut))
			}
		}
	}
	return n
}

func viewSize(v View) int {
	const word = 8
	// id + per-member (id string approximated as one word + start-change id)
	return word + v.Members.Len()*2*word
}

// String renders a short human-readable form for traces and logs.
func (m WireMsg) String() string {
	switch m.Kind {
	case KindView:
		return fmt.Sprintf("view_msg(%s)", m.View)
	case KindApp:
		return fmt.Sprintf("app_msg(#%d)", m.App.ID)
	case KindFwd:
		return fmt.Sprintf("fwd_msg(#%d from %s i=%d)", m.App.ID, m.Origin, m.Index)
	case KindSync:
		if m.Small {
			return fmt.Sprintf("sync_msg(cid=%d small)", m.CID)
		}
		return fmt.Sprintf("sync_msg(cid=%d view=%s cut=%s)", m.CID, m.View, m.Cut)
	default:
		return fmt.Sprintf("wire_msg(kind=%d)", int(m.Kind))
	}
}

// SyncMsg is the stored form of a received synchronization message:
// the sender's view at the time of sending and its committed cut
// (sync_msg[q][cid] in Figure 10). Small records the Section 5.2.4
// optimization: a small sync message declares "I am not in your transitional
// set" and carries neither view nor cut.
type SyncMsg struct {
	View  View
	Cut   Cut
	Small bool
}
