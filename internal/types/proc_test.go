package types

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestProcSetBasics(t *testing.T) {
	s := NewProcSet("b", "a", "c")
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	if !s.Contains("a") || s.Contains("z") {
		t.Fatal("membership wrong")
	}
	s.Add("d")
	s.Remove("a")
	want := []ProcID{"b", "c", "d"}
	if got := s.Sorted(); !reflect.DeepEqual(got, want) {
		t.Fatalf("sorted = %v, want %v", got, want)
	}
	if got := s.Min(); got != "b" {
		t.Fatalf("min = %s, want b", got)
	}
	if got := s.String(); got != "{b, c, d}" {
		t.Fatalf("string = %q", got)
	}
}

func TestProcSetEmpty(t *testing.T) {
	var s ProcSet
	if s.Len() != 0 || s.Contains("a") || s.Min() != "" {
		t.Fatal("empty-set behavior wrong")
	}
	if got := NewProcSet().String(); got != "{}" {
		t.Fatalf("string = %q", got)
	}
}

func TestProcSetAlgebra(t *testing.T) {
	a := NewProcSet("p", "q", "r")
	b := NewProcSet("q", "r", "s")

	if got := a.Union(b).Sorted(); !reflect.DeepEqual(got, []ProcID{"p", "q", "r", "s"}) {
		t.Errorf("union = %v", got)
	}
	if got := a.Intersect(b).Sorted(); !reflect.DeepEqual(got, []ProcID{"q", "r"}) {
		t.Errorf("intersect = %v", got)
	}
	if got := a.Minus(b).Sorted(); !reflect.DeepEqual(got, []ProcID{"p"}) {
		t.Errorf("minus = %v", got)
	}
	if !a.Intersect(b).SubsetOf(a) || !a.Intersect(b).SubsetOf(b) {
		t.Error("intersection not a subset of operands")
	}
	if a.Equal(b) || !a.Equal(NewProcSet("r", "q", "p")) {
		t.Error("equality wrong")
	}
}

func TestProcSetCloneIsIndependent(t *testing.T) {
	a := NewProcSet("x", "y")
	b := a.Clone()
	b.Add("z")
	b.Remove("x")
	if !a.Contains("x") || a.Contains("z") {
		t.Fatal("clone mutated the original")
	}
}

// randomSet draws a small random set for property tests.
func randomSet(r *rand.Rand) ProcSet {
	s := NewProcSet()
	n := r.Intn(6)
	for i := 0; i < n; i++ {
		s.Add(ProcID(string(rune('a' + r.Intn(8)))))
	}
	return s
}

func TestProcSetProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randomSet(r))
			}
		},
	}

	// Union is commutative; intersection distributes as expected;
	// A = (A∩B) ∪ (A−B).
	decompose := func(a, b ProcSet) bool {
		return a.Intersect(b).Union(a.Minus(b)).Equal(a)
	}
	if err := quick.Check(decompose, cfg); err != nil {
		t.Errorf("decomposition property: %v", err)
	}
	commutative := func(a, b ProcSet) bool {
		return a.Union(b).Equal(b.Union(a)) && a.Intersect(b).Equal(b.Intersect(a))
	}
	if err := quick.Check(commutative, cfg); err != nil {
		t.Errorf("commutativity property: %v", err)
	}
	sortedIsSorted := func(a ProcSet) bool {
		got := a.Sorted()
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) &&
			len(got) == a.Len()
	}
	if err := quick.Check(sortedIsSorted, cfg); err != nil {
		t.Errorf("sorted property: %v", err)
	}
	minIsSmallest := func(a ProcSet) bool {
		if a.Len() == 0 {
			return a.Min() == ""
		}
		return a.Min() == a.Sorted()[0]
	}
	if err := quick.Check(minIsSmallest, cfg); err != nil {
		t.Errorf("min property: %v", err)
	}
}
