package types

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestInitialView(t *testing.T) {
	v := InitialView("p")
	if v.ID != InitialViewID {
		t.Errorf("id = %d, want %d", v.ID, InitialViewID)
	}
	if !v.Contains("p") || v.Members.Len() != 1 {
		t.Errorf("members = %s, want {p}", v.Members)
	}
	if v.StartID["p"] != InitialStartChangeID {
		t.Errorf("startId = %d, want %d", v.StartID["p"], InitialStartChangeID)
	}
}

func TestViewIdentityIsTheWholeTriple(t *testing.T) {
	members := NewProcSet("a", "b")
	v1 := NewView(5, members, map[ProcID]StartChangeID{"a": 1, "b": 2})
	v2 := NewView(5, members, map[ProcID]StartChangeID{"a": 1, "b": 2})
	v3 := NewView(5, members, map[ProcID]StartChangeID{"a": 1, "b": 3})
	v4 := NewView(5, NewProcSet("a", "b", "c"),
		map[ProcID]StartChangeID{"a": 1, "b": 2, "c": 1})
	v5 := NewView(6, members, map[ProcID]StartChangeID{"a": 1, "b": 2})

	if !v1.Equal(v2) || v1.Key() != v2.Key() {
		t.Error("identical triples must be the same view")
	}
	for name, w := range map[string]View{"startId": v3, "members": v4, "id": v5} {
		if v1.Equal(w) {
			t.Errorf("views differing in %s compare equal", name)
		}
		if v1.Key() == w.Key() {
			t.Errorf("views differing in %s share a key", name)
		}
	}
}

func TestViewKeyCacheMatchesComputed(t *testing.T) {
	v := NewView(9, NewProcSet("x", "y"), map[ProcID]StartChangeID{"x": 4, "y": 7})
	// A structurally identical view built without the constructor computes
	// its key on demand; the two must agree.
	w := View{ID: 9, Members: NewProcSet("x", "y"),
		StartID: map[ProcID]StartChangeID{"x": 4, "y": 7}}
	if v.Key() != w.Key() {
		t.Fatalf("cached key %q != computed key %q", v.Key(), w.Key())
	}
}

func TestViewCloneIsDeep(t *testing.T) {
	v := NewView(1, NewProcSet("a"), map[ProcID]StartChangeID{"a": 1})
	w := v.Clone()
	w.Members.Add("b")
	w.StartID["b"] = 2
	if v.Contains("b") || len(v.StartID) != 1 {
		t.Fatal("clone shares structure with the original")
	}
}

func TestStartChangeClone(t *testing.T) {
	sc := StartChange{ID: 3, Set: NewProcSet("a", "b")}
	cp := sc.Clone()
	cp.Set.Add("c")
	if sc.Set.Contains("c") {
		t.Fatal("clone shares the set")
	}
}

func TestMaxCut(t *testing.T) {
	got := MaxCut([]Cut{
		{"a": 3, "b": 1},
		{"a": 2, "b": 5, "c": 1},
		{},
	})
	want := Cut{"a": 3, "b": 5, "c": 1}
	if !got.Equal(want) {
		t.Fatalf("max cut = %v, want %v", got, want)
	}
	if len(MaxCut(nil)) != 0 {
		t.Fatal("max of no cuts should be empty")
	}
}

func TestCutEqualAndClone(t *testing.T) {
	c := Cut{"a": 1, "b": 0}
	d := c.Clone()
	if !c.Equal(d) {
		t.Fatal("clone not equal")
	}
	d["a"] = 2
	if c.Equal(d) || c["a"] != 1 {
		t.Fatal("clone shares storage")
	}
	// Note: Cut.Equal is structural; an explicit zero entry differs from an
	// absent one (the checkers use their own zero-tolerant comparison).
	if (Cut{"a": 0}).Equal(Cut{}) {
		t.Fatal("structural equality should distinguish explicit zero")
	}
	if c.String() != "[a:1 b:0]" {
		t.Fatalf("string = %q", c.String())
	}
}

func TestMaxCutProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			cuts := make([]Cut, r.Intn(4)+1)
			for i := range cuts {
				c := make(Cut)
				for j := 0; j < r.Intn(5); j++ {
					c[ProcID(string(rune('a'+r.Intn(5))))] = r.Intn(10)
				}
				cuts[i] = c
			}
			vals[0] = reflect.ValueOf(cuts)
		},
	}
	dominates := func(cuts []Cut) bool {
		m := MaxCut(cuts)
		for _, c := range cuts {
			for p, i := range c {
				if m[p] < i {
					return false
				}
			}
		}
		// And every entry of the max is witnessed by some cut.
		for p, i := range m {
			witnessed := false
			for _, c := range cuts {
				if c[p] == i {
					witnessed = true
					break
				}
			}
			if !witnessed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(dominates, cfg); err != nil {
		t.Errorf("max-cut property: %v", err)
	}
}
