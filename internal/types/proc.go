// Package types defines the fundamental vocabulary of the group
// communication service: process identifiers, views, start-change
// identifiers, cuts, and the wire-message formats exchanged between GCS
// end-points over the CO_RFIFO substrate.
//
// The definitions follow Section 2 and Section 3.1 of Keidar & Khazan,
// "A Client-Server Approach to Virtually Synchronous Group Multicast"
// (ICDCS 2000).
package types

import (
	"slices"
	"strings"
)

// ProcID identifies a process (equivalently, a GCS end-point; the paper uses
// the two words interchangeably). Identifiers are opaque strings; ordering is
// lexicographic and is used where the paper requires a deterministic choice
// (e.g., the min-copies forwarding strategy picks the minimum identifier).
type ProcID string

// ProcSet is a finite set of process identifiers.
type ProcSet map[ProcID]struct{}

// NewProcSet builds a set from the given members.
func NewProcSet(members ...ProcID) ProcSet {
	s := make(ProcSet, len(members))
	for _, m := range members {
		s[m] = struct{}{}
	}
	return s
}

// Contains reports whether p is a member of s.
func (s ProcSet) Contains(p ProcID) bool {
	_, ok := s[p]
	return ok
}

// Add inserts p into s.
func (s ProcSet) Add(p ProcID) { s[p] = struct{}{} }

// Remove deletes p from s.
func (s ProcSet) Remove(p ProcID) { delete(s, p) }

// Len returns the cardinality of s.
func (s ProcSet) Len() int { return len(s) }

// Clone returns an independent copy of s.
func (s ProcSet) Clone() ProcSet {
	c := make(ProcSet, len(s))
	for p := range s {
		c[p] = struct{}{}
	}
	return c
}

// Union returns a new set containing every member of s or t.
func (s ProcSet) Union(t ProcSet) ProcSet {
	u := s.Clone()
	for p := range t {
		u[p] = struct{}{}
	}
	return u
}

// Intersect returns a new set containing the members common to s and t.
func (s ProcSet) Intersect(t ProcSet) ProcSet {
	u := make(ProcSet)
	for p := range s {
		if t.Contains(p) {
			u[p] = struct{}{}
		}
	}
	return u
}

// Minus returns a new set containing the members of s that are not in t.
func (s ProcSet) Minus(t ProcSet) ProcSet {
	u := make(ProcSet)
	for p := range s {
		if !t.Contains(p) {
			u[p] = struct{}{}
		}
	}
	return u
}

// SubsetOf reports whether every member of s is also in t.
func (s ProcSet) SubsetOf(t ProcSet) bool {
	for p := range s {
		if !t.Contains(p) {
			return false
		}
	}
	return true
}

// Equal reports whether s and t have exactly the same members.
func (s ProcSet) Equal(t ProcSet) bool {
	return len(s) == len(t) && s.SubsetOf(t)
}

// Sorted returns the members of s in ascending order. The result is a fresh
// slice; mutating it does not affect s.
func (s ProcSet) Sorted() []ProcID {
	out := make([]ProcID, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	slices.Sort(out)
	return out
}

// Min returns the smallest member of s, or "" if s is empty. It implements
// the deterministic selection used by the min-copies forwarding strategy
// (Section 5.2.2).
func (s ProcSet) Min() ProcID {
	var min ProcID
	first := true
	for p := range s {
		if first || p < min {
			min = p
			first = false
		}
	}
	return min
}

// String renders the set as "{a, b, c}" in sorted order.
func (s ProcSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range s.Sorted() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(p))
	}
	b.WriteByte('}')
	return b.String()
}

// GobEncode implements gob.GobEncoder: the set is encoded as its sorted
// members joined by NUL, making ProcSet usable inside gob-encoded wire
// frames (the live TCP transport).
func (s ProcSet) GobEncode() ([]byte, error) {
	members := s.Sorted()
	parts := make([]string, len(members))
	for i, p := range members {
		parts[i] = string(p)
	}
	return []byte(strings.Join(parts, "\x00")), nil
}

// GobDecode implements gob.GobDecoder.
func (s *ProcSet) GobDecode(b []byte) error {
	out := make(ProcSet)
	if len(b) > 0 {
		for _, part := range strings.Split(string(b), "\x00") {
			out.Add(ProcID(part))
		}
	}
	*s = out
	return nil
}
