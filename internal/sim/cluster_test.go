package sim

import (
	"fmt"
	"testing"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/spec"
	"vsgm/internal/types"
)

func newTestCluster(t *testing.T, n int, opts func(*Config)) (*Cluster, *spec.Suite) {
	t.Helper()
	suite := spec.FullSuite(spec.WithTrace())
	cfg := Config{
		Procs:           ProcIDs(n),
		Level:           core.LevelGCS,
		Latency:         UniformLatency{Base: 10 * time.Millisecond, Jitter: 5 * time.Millisecond},
		MembershipRound: 10 * time.Millisecond,
		Seed:            1,
		Suite:           suite,
	}
	if opts != nil {
		opts(&cfg)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c, suite
}

func mustReconfigure(t *testing.T, c *Cluster, set types.ProcSet) types.View {
	t.Helper()
	v, _, err := c.ReconfigureTo(set)
	if err != nil {
		t.Fatalf("ReconfigureTo(%s): %v", set, err)
	}
	return v
}

func assertSpec(t *testing.T, suite *spec.Suite) {
	t.Helper()
	if err := suite.Err(); err != nil {
		t.Fatalf("specification violations:\n%v", err)
	}
}

func TestFormInitialGroup(t *testing.T) {
	c, suite := newTestCluster(t, 3, nil)
	all := types.NewProcSet(c.Procs()...)
	v := mustReconfigure(t, c, all)

	for _, p := range c.Procs() {
		if got := c.Endpoint(p).CurrentView(); !got.Equal(v) {
			t.Errorf("%s current view = %s, want %s", p, got, v)
		}
	}
	assertSpec(t, suite)
}

func TestSteadyStateMulticast(t *testing.T) {
	c, suite := newTestCluster(t, 4, nil)
	all := types.NewProcSet(c.Procs()...)
	v := mustReconfigure(t, c, all)

	const perSender = 5
	for round := 0; round < perSender; round++ {
		for _, p := range c.Procs() {
			if _, err := c.Send(p, []byte(fmt.Sprintf("m-%s-%d", p, round))); err != nil {
				t.Fatalf("send from %s: %v", p, err)
			}
		}
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}

	wantDelivered := int64(len(c.Procs()) * len(c.Procs()) * perSender)
	if got := c.Metrics().Delivered; got != wantDelivered {
		t.Errorf("delivered %d messages, want %d", got, wantDelivered)
	}
	assertSpec(t, suite)
	if err := spec.CheckLiveness(suite.Trace(), v); err != nil {
		t.Errorf("liveness: %v", err)
	}
}

func TestMemberLeavesWithTrafficInFlight(t *testing.T) {
	c, suite := newTestCluster(t, 4, nil)
	procs := c.Procs()
	all := types.NewProcSet(procs...)
	mustReconfigure(t, c, all)

	for i := 0; i < 3; i++ {
		for _, p := range procs {
			if _, err := c.Send(p, []byte("x")); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
	}
	// Immediately reconfigure without draining: the leaving member's
	// messages are still in flight, so cut agreement has real work to do.
	survivor := types.NewProcSet(procs[0], procs[1], procs[2])
	v := mustReconfigure(t, c, survivor)

	for _, p := range survivor.Sorted() {
		if got := c.Endpoint(p).CurrentView(); !got.Equal(v) {
			t.Errorf("%s current view = %s, want %s", p, got, v)
		}
	}
	assertSpec(t, suite)
}

func TestPartitionAndMerge(t *testing.T) {
	c, suite := newTestCluster(t, 4, nil)
	procs := c.Procs()
	all := types.NewProcSet(procs...)
	mustReconfigure(t, c, all)

	left := types.NewProcSet(procs[0], procs[1])
	right := types.NewProcSet(procs[2], procs[3])
	views, err := c.Partition(left, right)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	if len(views) != 2 {
		t.Fatalf("got %d views, want 2", len(views))
	}
	// Each side operates independently.
	if _, err := c.Send(procs[0], []byte("left")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send(procs[3], []byte("right")); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}

	// Merge back into one view.
	c.HealConnectivity()
	merged := mustReconfigure(t, c, all)
	for _, p := range procs {
		if got := c.Endpoint(p).CurrentView(); !got.Equal(merged) {
			t.Errorf("%s current view = %s, want %s", p, got, merged)
		}
	}
	assertSpec(t, suite)
}

func TestCascadedChangeSkipsObsoleteView(t *testing.T) {
	c, suite := newTestCluster(t, 3, func(cfg *Config) {
		// Make membership notifications fast relative to the sync round so
		// the second change overtakes the first view's installation.
		cfg.MembershipLatency = FixedLatency(1 * time.Millisecond)
		cfg.Latency = FixedLatency(20 * time.Millisecond)
	})
	procs := c.Procs()
	pair := types.NewProcSet(procs[0], procs[1])
	all := types.NewProcSet(procs...)

	// Establish a shared two-member view first, so that the next view's
	// synchronization round requires a real (20ms) message exchange.
	mustReconfigure(t, c, pair)

	if err := c.StartChange(all); err != nil {
		t.Fatal(err)
	}
	v1, err := c.DeliverView(all)
	if err != nil {
		t.Fatal(err)
	}
	// Before p00/p01 can finish the sync round for v1, the membership
	// changes its mind and announces a newer view: v1 is now known to be
	// out of date at those end-points.
	if err := c.StartChange(all); err != nil {
		t.Fatal(err)
	}
	v2, err := c.DeliverView(all)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}

	for _, p := range procs {
		if got := c.Endpoint(p).CurrentView(); !got.Equal(v2) {
			t.Errorf("%s current view = %s, want %s", p, got, v2)
		}
	}
	// The obsolete view v1 must not have been delivered at the members of
	// the old shared view (p02, alone in a singleton view, may legitimately
	// install v1 before learning it is out of date).
	times := c.Metrics().InstallTimes(v1.Key())
	for _, p := range pair.Sorted() {
		if _, ok := times[p]; ok {
			t.Errorf("obsolete view %s was installed at %s", v1, p)
		}
	}
	assertSpec(t, suite)
}

func TestCrashAndRecovery(t *testing.T) {
	c, suite := newTestCluster(t, 3, nil)
	procs := c.Procs()
	all := types.NewProcSet(procs...)
	mustReconfigure(t, c, all)

	if _, err := c.Send(procs[0], []byte("before-crash")); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}

	if err := c.Crash(procs[2]); err != nil {
		t.Fatal(err)
	}
	survivors := types.NewProcSet(procs[0], procs[1])
	mustReconfigure(t, c, survivors)
	if _, err := c.Send(procs[1], []byte("while-down")); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}

	if err := c.Recover(procs[2]); err != nil {
		t.Fatal(err)
	}
	v := mustReconfigure(t, c, all)
	for _, p := range procs {
		if got := c.Endpoint(p).CurrentView(); !got.Equal(v) {
			t.Errorf("%s current view = %s, want %s", p, got, v)
		}
	}
	// Local Monotonicity must hold across the crash: the recovered
	// end-point's new view id exceeds its pre-crash views.
	assertSpec(t, suite)
}

func TestLevelsWVAndVS(t *testing.T) {
	for _, level := range []core.Level{core.LevelWV, core.LevelVS} {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			var suite *spec.Suite
			if level == core.LevelWV {
				suite = spec.WVSuite(spec.WithTrace())
			} else {
				suite = spec.VSSuite(spec.WithTrace())
			}
			c, err := NewCluster(Config{
				Procs:           ProcIDs(3),
				Level:           level,
				Latency:         FixedLatency(5 * time.Millisecond),
				MembershipRound: 5 * time.Millisecond,
				Seed:            7,
				Suite:           suite,
			})
			if err != nil {
				t.Fatal(err)
			}
			all := types.NewProcSet(c.Procs()...)
			v, _, err := c.ReconfigureTo(all)
			if err != nil {
				t.Fatalf("reconfigure: %v", err)
			}
			for _, p := range c.Procs() {
				if _, err := c.Send(p, []byte("hello")); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Run(); err != nil {
				t.Fatal(err)
			}
			if err := suite.Err(); err != nil {
				t.Fatalf("spec violations:\n%v", err)
			}
			if err := spec.CheckLiveness(suite.Trace(), v); err != nil {
				t.Errorf("liveness: %v", err)
			}
		})
	}
}

func TestStabilityAcksBoundBuffersUnderSteadyTraffic(t *testing.T) {
	run := func(ackInterval int) int {
		c, suite := newTestCluster(t, 3, func(cfg *Config) {
			cfg.AckInterval = ackInterval
		})
		all := types.NewProcSet(c.Procs()...)
		mustReconfigure(t, c, all)
		for round := 0; round < 20; round++ {
			for _, p := range c.Procs() {
				if _, err := c.Send(p, []byte("steady")); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Run(); err != nil {
				t.Fatal(err)
			}
		}
		assertSpec(t, suite)
		total := 0
		for _, p := range c.Procs() {
			total += c.CoreEndpoint(p).BufferedMessages()
		}
		return total
	}

	withoutAcks := run(0)
	withAcks := run(1)
	if withoutAcks != 3*3*20 {
		t.Errorf("without acks buffered = %d, want all %d messages retained", withoutAcks, 180)
	}
	if withAcks*4 > withoutAcks {
		t.Errorf("acks did not reclaim buffers: %d with vs %d without", withAcks, withoutAcks)
	}
}

func TestStabilityAcksSurviveReconfiguration(t *testing.T) {
	// Garbage collection must never break a later view change: stable
	// (collected) prefixes still count in the cuts and nobody needs them
	// forwarded.
	c, suite := newTestCluster(t, 4, func(cfg *Config) {
		cfg.AckInterval = 1
	})
	procs := c.Procs()
	all := types.NewProcSet(procs...)
	mustReconfigure(t, c, all)
	for i := 0; i < 10; i++ {
		for _, p := range procs {
			if _, err := c.Send(p, []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	survivors := types.NewProcSet(procs[0], procs[1], procs[2])
	v := mustReconfigure(t, c, survivors)
	for _, p := range survivors.Sorted() {
		if got := c.Endpoint(p).CurrentView(); !got.Equal(v) {
			t.Errorf("%s view = %s, want %s", p, got, v)
		}
	}
	assertSpec(t, suite)
}

func TestHierarchicalSyncRound(t *testing.T) {
	// The Section 9 two-tier extension: with 9 members in groups of 3,
	// reconfiguration must still satisfy every specification, and the sync
	// traffic must collapse from N(N-1) point-to-point messages to
	// member→leader sends plus leader bundles.
	const n = 9
	c, suite := newTestCluster(t, n, func(cfg *Config) {
		cfg.HierarchyGroupSize = 3
	})
	all := types.NewProcSet(c.Procs()...)
	mustReconfigure(t, c, all)

	// Traffic, then a steady-state change with the cut agreement running
	// through the hierarchy.
	for _, p := range c.Procs() {
		if _, err := c.Send(p, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	before := c.Network().Stats()
	v := mustReconfigure(t, c, all)
	delta := c.Network().Stats().Sub(before)

	for _, p := range c.Procs() {
		if got := c.Endpoint(p).CurrentView(); !got.Equal(v) {
			t.Errorf("%s view = %s, want %s", p, got, v)
		}
	}
	assertSpec(t, suite)

	flat := int64(n * (n - 1))
	if delta.Sent.Sync >= flat {
		t.Errorf("hierarchical syncs = %d, want below the flat %d", delta.Sent.Sync, flat)
	}
	if delta.Sent.Bundle == 0 {
		t.Error("no leader bundles on the wire")
	}
	t.Logf("sync=%d bundle=%d (flat would be %d syncs)", delta.Sent.Sync, delta.Sent.Bundle, flat)
}

func TestHierarchyWithLeaveAndForwarding(t *testing.T) {
	// A member leaves mid-traffic under the hierarchy: cut agreement and
	// message recovery must still work through the aggregated syncs.
	c, suite := newTestCluster(t, 6, func(cfg *Config) {
		cfg.HierarchyGroupSize = 2
	})
	procs := c.Procs()
	all := types.NewProcSet(procs...)
	mustReconfigure(t, c, all)
	for i := 0; i < 3; i++ {
		for _, p := range procs {
			if _, err := c.Send(p, []byte("y")); err != nil {
				t.Fatal(err)
			}
		}
	}
	survivors := types.NewProcSet(procs[:5]...)
	v := mustReconfigure(t, c, survivors)
	for _, p := range survivors.Sorted() {
		if got := c.Endpoint(p).CurrentView(); !got.Equal(v) {
			t.Errorf("%s view = %s, want %s", p, got, v)
		}
	}
	assertSpec(t, suite)
}

func TestMetricsInstallTimesAndBlockedTotals(t *testing.T) {
	c, _ := newTestCluster(t, 3, nil)
	all := types.NewProcSet(c.Procs()...)
	v := mustReconfigure(t, c, all)

	times := c.Metrics().InstallTimes(v.Key())
	if len(times) != 3 {
		t.Fatalf("install times recorded for %d members, want 3", len(times))
	}
	for p, at := range times {
		if at <= 0 {
			t.Errorf("%s install time = %v", p, at)
		}
	}
	// Blocking was recorded for the change and resolved at installation.
	var blocked int
	for _, d := range c.Metrics().BlockedTotal {
		if d > 0 {
			blocked++
		}
	}
	if blocked != 3 {
		t.Errorf("blocked durations recorded for %d members, want 3", blocked)
	}
	// Unknown view keys yield an empty (non-nil) map.
	if got := c.Metrics().InstallTimes("nope"); len(got) != 0 {
		t.Errorf("unknown view key returned %v", got)
	}
}

func TestRunForDoesNotExecuteFutureEvents(t *testing.T) {
	c, _ := newTestCluster(t, 2, nil)
	fired := false
	c.At(time.Hour, func() { fired = true })
	if err := c.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event an hour out fired within a minute")
	}
	if c.Now() != time.Minute {
		t.Fatalf("clock = %v", c.Now())
	}
}

func TestMessagesDeliverWhileReconfiguring(t *testing.T) {
	// The §1 claim: "our algorithm allows some application messages to be
	// delivered while it is reconfiguring." Track pendency from the event
	// stream itself: deliveries between an end-point's block request and
	// its next view event happen while the change is in progress.
	pending := make(map[types.ProcID]bool)
	duringChange := 0
	cfg := Config{
		Procs:           ProcIDs(4),
		Latency:         UniformLatency{Base: 10 * time.Millisecond, Jitter: 8 * time.Millisecond},
		MembershipRound: 60 * time.Millisecond, // a long membership round
		Seed:            71,
	}
	cfg.OnAppEvent = func(p types.ProcID, ev core.Event) {
		switch ev.(type) {
		case core.BlockEvent:
			pending[p] = true
		case core.ViewEvent:
			pending[p] = false
		case core.DeliverEvent:
			if pending[p] {
				duringChange++
			}
		}
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := types.NewProcSet(c.Procs()...)
	mustReconfigure(t, c, all)

	// Messages race the start_change notifications: under jitter some
	// arrive after the block request and deliver during the round.
	if err := c.StartChange(all); err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Procs() {
		if _, err := c.Send(p, []byte("racing")); err != nil {
			t.Fatal(err)
		}
	}
	c.At(60*time.Millisecond, func() {
		if _, err := c.DeliverView(all); err != nil {
			t.Errorf("deliver view: %v", err)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if duringChange == 0 {
		t.Fatal("no messages delivered while reconfiguring; the paper's overlap claim should hold")
	}
	t.Logf("%d deliveries happened while a change was pending", duringChange)
}

func TestDeterministicReplay(t *testing.T) {
	// Two clusters with identical configuration and seed must produce
	// byte-identical external traces — the property every debugging and
	// model-checking workflow in this repository leans on.
	runOnce := func() string {
		suite := spec.FullSuite(spec.WithTrace())
		c, err := NewCluster(Config{
			Procs:              ProcIDs(4),
			Latency:            UniformLatency{Base: 10 * time.Millisecond, Jitter: 7 * time.Millisecond},
			MembershipRound:    9 * time.Millisecond,
			Seed:               123,
			Suite:              suite,
			AckInterval:        1,
			HierarchyGroupSize: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		procs := c.Procs()
		all := types.NewProcSet(procs...)
		if _, _, err := c.ReconfigureTo(all); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			for _, p := range procs {
				if _, err := c.Send(p, []byte(fmt.Sprintf("d%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.RunFor(4 * time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := c.ReconfigureTo(types.NewProcSet(procs[:3]...)); err != nil {
			t.Fatal(err)
		}
		return spec.RenderTrace(suite.Trace())
	}

	first := runOnce()
	second := runOnce()
	if first != second {
		t.Fatal("identical seeds produced different traces")
	}
	if len(first) == 0 {
		t.Fatal("empty trace")
	}
}
