package sim

import (
	"fmt"
	"math/rand"
	"time"

	"vsgm/internal/corfifo"
	"vsgm/internal/types"
)

// engine owns the virtual clock, the event queue, the seeded RNG, and the
// scheduling of CO_RFIFO deliveries under a latency model and a mutable
// connectivity relation. Cluster (GCS end-points under the oracle
// membership) and ServerWorld (clients under the distributed membership
// servers) both build on it.
type engine struct {
	rng     *rand.Rand
	now     time.Duration
	queue   eventQueue
	net     *corfifo.Network
	latency LatencyModel

	procs       []types.ProcID
	comp        map[types.ProcID]int
	blockedLink map[pair]bool
	lastArrival map[pair]time.Duration
	scheduled   map[pair]int
}

func newEngine(procs []types.ProcID, latency LatencyModel, seed int64) *engine {
	e := &engine{
		rng:         rand.New(rand.NewSource(seed)),
		net:         corfifo.NewNetwork(),
		latency:     latency,
		procs:       append([]types.ProcID(nil), procs...),
		comp:        make(map[types.ProcID]int, len(procs)),
		blockedLink: make(map[pair]bool),
		lastArrival: make(map[pair]time.Duration),
		scheduled:   make(map[pair]int),
	}
	for _, p := range procs {
		e.comp[p] = 0
	}
	e.net.SetSendObserver(e.onSend)
	return e
}

// addProcs admits processes to the world at runtime (flash-crowd joins).
// They enter component 0 — the fully-healed component — so callers should
// admit while connectivity is whole, or call SetConnectivity afterwards.
func (e *engine) addProcs(ids ...types.ProcID) {
	for _, p := range ids {
		if _, ok := e.comp[p]; ok {
			continue
		}
		e.procs = append(e.procs, p)
		e.comp[p] = 0
	}
}

// At schedules fn to run after the given delay of virtual time.
func (e *engine) At(delay time.Duration, fn func()) {
	e.queue.push(e.now+delay, fn)
}

// Now returns the current virtual time.
func (e *engine) Now() time.Duration { return e.now }

// Network exposes the substrate (for traffic statistics).
func (e *engine) Network() *corfifo.Network { return e.net }

// Run processes events until the queue is empty. It guards against runaway
// executions with a large step bound.
func (e *engine) Run() error {
	const maxSteps = 50_000_000
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			return fmt.Errorf("sim: exceeded %d steps; likely livelock", maxSteps)
		}
		ev, ok := e.queue.pop()
		if !ok {
			return nil
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		ev.fn()
	}
}

// RunFor processes all events scheduled within the next d of virtual time
// and advances the clock to exactly now+d.
func (e *engine) RunFor(d time.Duration) error {
	deadline := e.now + d
	const maxSteps = 50_000_000
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			return fmt.Errorf("sim: exceeded %d steps; likely livelock", maxSteps)
		}
		ev, ok := e.queue.peek()
		if !ok || ev.at > deadline {
			e.now = deadline
			return nil
		}
		ev, _ = e.queue.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		ev.fn()
	}
}

func (e *engine) connected(from, to types.ProcID) bool {
	if e.blockedLink[pair{from, to}] {
		return false
	}
	return e.comp[from] == e.comp[to]
}

// SetConnectivity partitions the processes into the given groups; processes
// not mentioned become singletons. Queued traffic on newly connected links
// is flushed into delivery.
func (e *engine) SetConnectivity(groups ...types.ProcSet) {
	next := len(groups) + 1
	assigned := make(map[types.ProcID]bool, len(e.procs))
	for i, g := range groups {
		for p := range g {
			e.comp[p] = i
			assigned[p] = true
		}
	}
	for _, p := range e.procs {
		if !assigned[p] {
			e.comp[p] = next
			next++
		}
	}
	e.flushConnected()
}

// HealConnectivity reconnects every process.
func (e *engine) HealConnectivity() {
	for _, p := range e.procs {
		e.comp[p] = 0
	}
	e.flushConnected()
}

// BlockLink severs the directed link from → to regardless of components.
func (e *engine) BlockLink(from, to types.ProcID) {
	e.blockedLink[pair{from, to}] = true
}

// UnblockLink restores the directed link and flushes its queued traffic.
func (e *engine) UnblockLink(from, to types.ProcID) {
	delete(e.blockedLink, pair{from, to})
	e.flushConnected()
}

// flushConnected schedules delivery events for messages that were queued
// while their link was severed and is now connected again. It walks only the
// links with queued traffic (sorted, so replays stay deterministic) rather
// than all O(procs²) pairs — the difference between a 10k-endpoint world
// healing a partition in milliseconds and in minutes.
func (e *engine) flushConnected() {
	for _, l := range e.net.PendingLinks() {
		if !e.connected(l.From, l.To) {
			continue
		}
		backlog := l.Count - e.scheduled[pair{l.From, l.To}]
		for i := 0; i < backlog; i++ {
			e.scheduleDelivery(l.From, l.To)
		}
	}
}

func (e *engine) scheduleDelivery(from, to types.ProcID) {
	pr := pair{from, to}
	arrival := e.now + e.latency.Sample(from, to, e.rng)
	if arrival < e.lastArrival[pr] {
		arrival = e.lastArrival[pr]
	}
	e.lastArrival[pr] = arrival
	e.scheduled[pr]++
	e.queue.push(arrival, func() {
		e.scheduled[pr]--
		e.net.DeliverNext(from, to)
	})
}

// onSend is the substrate's send observer: if the link is up, schedule the
// delivery; otherwise the message stays queued (and is flushed on heal, or
// implicitly lost if the link never heals — the CO_RFIFO lose action for
// non-reliable destinations).
func (e *engine) onSend(from, to types.ProcID, _ types.WireMsg) {
	if !e.connected(from, to) {
		return
	}
	e.scheduleDelivery(from, to)
}
