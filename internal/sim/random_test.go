package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/randseed"
	"vsgm/internal/spec"
	"vsgm/internal/types"
)

// TestRandomScenarios drives many seeded random schedules — traffic,
// membership changes committed while earlier ones are still in flight,
// partitions, merges, crashes, and recoveries — and checks every execution
// against the full specification suite, then verifies convergence and
// conditional liveness on the stabilized final view.
func TestRandomScenarios(t *testing.T) {
	if seed, ok := randseed.FromEnv(); ok {
		// Replay mode: run exactly the seed from a previous failure log.
		runRandomScenario(t, seed, core.LevelGCS)
		return
	}
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runRandomScenario(t, int64(seed), core.LevelGCS)
		})
	}
}

// TestRandomScenariosVSLevel repeats a smaller sweep at the VS_RFIFO+TS
// level (no Self Delivery, no client blocking).
func TestRandomScenariosVSLevel(t *testing.T) {
	if seed, ok := randseed.FromEnv(); ok {
		runRandomScenario(t, seed, core.LevelVS)
		return
	}
	for seed := 100; seed < 110; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runRandomScenario(t, int64(seed), core.LevelVS)
		})
	}
}

func runRandomScenario(t *testing.T, seed int64, level core.Level) {
	t.Helper()
	t.Logf("PRNG seed %d (replay: %s=%d go test -run '%s' ./internal/sim)",
		seed, randseed.EnvVar, seed, t.Name())
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(3)

	var suite *spec.Suite
	if level == core.LevelGCS {
		suite = spec.FullSuite(spec.WithTrace())
	} else {
		suite = spec.VSSuite(spec.WithTrace())
	}
	strategies := []core.ForwardingStrategy{
		core.NewSimpleForwarding(),
		core.NewMinCopiesForwarding(),
	}
	c, err := NewCluster(Config{
		Procs:              ProcIDs(n),
		Level:              level,
		Forwarding:         strategies[rng.Intn(len(strategies))],
		SmallSync:          rng.Intn(2) == 0,
		AckInterval:        rng.Intn(3), // 0 (off), 1, or 2
		HierarchyGroupSize: []int{0, 2, 3}[rng.Intn(3)],

		Latency:         UniformLatency{Base: 10 * time.Millisecond, Jitter: 8 * time.Millisecond},
		MembershipRound: 8 * time.Millisecond,
		Seed:            seed * 7,
		Suite:           suite,
	})
	if err != nil {
		t.Fatal(err)
	}
	procs := c.Procs()

	alive := types.NewProcSet(procs...)
	crashed := types.NewProcSet()
	var pendingChange types.ProcSet

	randomAliveSubset := func() types.ProcSet {
		members := alive.Sorted()
		rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
		k := 1 + rng.Intn(len(members))
		return types.NewProcSet(members[:k]...)
	}

	ops := 30
	for i := 0; i < ops; i++ {
		switch op := rng.Intn(10); {
		case op < 4: // send traffic from a random live member
			p := alive.Sorted()[rng.Intn(alive.Len())]
			_, err := c.Send(p, []byte(fmt.Sprintf("op%d", i)))
			if err != nil && !errors.Is(err, core.ErrBlocked) && !errors.Is(err, core.ErrCrashed) {
				t.Fatalf("send: %v", err)
			}

		case op < 6: // begin a membership change (commit comes later)
			set := randomAliveSubset()
			if err := c.StartChange(set); err != nil {
				t.Fatalf("start change: %v", err)
			}
			pendingChange = set

		case op < 8: // commit the pending change while traffic is in flight
			if pendingChange == nil {
				continue
			}
			commit := pendingChange.Minus(crashed)
			if commit.Len() == 0 {
				continue
			}
			if _, err := c.DeliverView(commit); err != nil {
				// The membership changed its mind in between (a crash,
				// recovery, or partition invalidated the pending change).
				// A fresh start_change is always legal; re-announce and
				// commit — exactly the cascading pattern of Section 5.
				if err := c.StartChange(commit); err != nil {
					t.Fatalf("re-announce: %v", err)
				}
				if _, err := c.DeliverView(commit); err != nil {
					t.Fatalf("deliver view after re-announce: %v", err)
				}
			}
			pendingChange = nil

		case op < 9: // crash a member (keep at least two alive)
			if alive.Len() <= 2 {
				continue
			}
			victims := alive.Sorted()
			p := victims[rng.Intn(len(victims))]
			if err := c.Crash(p); err != nil {
				t.Fatalf("crash: %v", err)
			}
			alive.Remove(p)
			crashed.Add(p)

		default: // recover a crashed member
			if crashed.Len() == 0 {
				continue
			}
			p := crashed.Sorted()[rng.Intn(crashed.Len())]
			if err := c.Recover(p); err != nil {
				t.Fatalf("recover: %v", err)
			}
			crashed.Remove(p)
			alive.Add(p)
		}
		if err := c.RunFor(time.Duration(rng.Intn(15)) * time.Millisecond); err != nil {
			t.Fatal(err)
		}

		// Occasionally partition and re-merge mid-run.
		if i == ops/2 && alive.Len() >= 4 && rng.Intn(2) == 0 {
			members := alive.Sorted()
			mid := len(members) / 2
			left := types.NewProcSet(members[:mid]...)
			right := types.NewProcSet(members[mid:]...)
			if _, err := c.Partition(left, right); err != nil {
				t.Fatalf("partition: %v", err)
			}
			c.HealConnectivity()
		}
	}

	// Stabilize: one final change to all live members, run to quiescence.
	c.HealConnectivity()
	final, _, err := c.ReconfigureTo(alive)
	if err != nil {
		t.Fatalf("final reconfiguration: %v", err)
	}
	for _, p := range alive.Sorted() {
		if got := c.Endpoint(p).CurrentView(); !got.Equal(final) {
			t.Errorf("%s stabilized in %s, want %s", p, got, final)
		}
	}

	// Post-stabilization traffic must reach everyone (Property 4.2).
	for _, p := range alive.Sorted() {
		if _, err := c.Send(p, []byte("final")); err != nil {
			t.Fatalf("final send: %v", err)
		}
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}

	if err := suite.Err(); err != nil {
		t.Fatalf("specification violations:\n%v", err)
	}
	if err := spec.CheckLiveness(suite.Trace(), final); err != nil {
		t.Errorf("liveness: %v", err)
	}
}
