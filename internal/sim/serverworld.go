package sim

import (
	"fmt"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/corfifo"
	"vsgm/internal/membership"
	"vsgm/internal/spec"
	"vsgm/internal/types"
)

// ServerWorldConfig parameterizes a simulation of the full client-server
// architecture: dedicated membership servers running the one-round
// membership algorithm among themselves, each serving a set of clients.
type ServerWorldConfig struct {
	// Servers is the number of dedicated membership servers.
	Servers int
	// ClientsPerServer is the number of clients homed at each server.
	ClientsPerServer int
	// Latency models server-to-server and client-to-client link latency.
	Latency LatencyModel
	// NotifyLatency models server-to-client notification latency; defaults
	// to Latency. Use FixedLatency(0) to model co-located clients (the
	// flat, every-client-is-a-server baseline of experiment E8).
	NotifyLatency LatencyModel
	// Seed seeds the RNG.
	Seed int64
	// Suite receives the trace; optional.
	Suite *spec.Suite
	// WithEndpoints attaches a real GCS end-point to every client, so the
	// whole paper architecture (Figure 1) runs end to end. Without it the
	// world only counts notifications, which suffices for the scalability
	// experiment.
	WithEndpoints bool
}

// ServerWorld is the simulated client-server deployment.
type ServerWorld struct {
	*engine

	cfg       ServerWorldConfig
	servers   map[types.ProcID]*membership.Server
	serverIDs []types.ProcID
	clients   []types.ProcID
	home      map[types.ProcID]types.ProcID
	eps       map[types.ProcID]*core.Endpoint
	lastNotif map[types.ProcID]time.Duration
	detectors map[types.ProcID]*membership.Detector

	// epSeq numbers every end-point ever created, so message-id bases stay
	// unique across attach/detach churn.
	epSeq int

	// Notifications counts server-to-client membership notifications.
	Notifications int64
}

// ServerIDs returns n server identifiers s00, s01, ...
func ServerIDs(n int) []types.ProcID {
	out := make([]types.ProcID, n)
	for i := range out {
		out[i] = types.ProcID(fmt.Sprintf("s%02d", i))
	}
	return out
}

// ClientIDs returns n client identifiers c000, c001, ...
func ClientIDs(n int) []types.ProcID {
	out := make([]types.ProcID, n)
	for i := range out {
		out[i] = types.ProcID(fmt.Sprintf("c%03d", i))
	}
	return out
}

// NewServerWorld builds the deployment: servers fully connected, each with
// its local clients registered.
func NewServerWorld(cfg ServerWorldConfig) (*ServerWorld, error) {
	if cfg.Servers <= 0 || cfg.ClientsPerServer <= 0 {
		return nil, fmt.Errorf("sim: server world needs at least one server and one client per server")
	}
	if cfg.Latency == nil {
		cfg.Latency = DefaultLatency()
	}
	if cfg.NotifyLatency == nil {
		cfg.NotifyLatency = cfg.Latency
	}

	serverIDs := ServerIDs(cfg.Servers)
	clients := ClientIDs(cfg.Servers * cfg.ClientsPerServer)
	procs := append(append([]types.ProcID(nil), serverIDs...), clients...)

	w := &ServerWorld{
		engine:    newEngine(procs, cfg.Latency, cfg.Seed),
		cfg:       cfg,
		servers:   make(map[types.ProcID]*membership.Server, cfg.Servers),
		serverIDs: serverIDs,
		clients:   clients,
		home:      make(map[types.ProcID]types.ProcID, len(clients)),
		eps:       make(map[types.ProcID]*core.Endpoint),
		lastNotif: make(map[types.ProcID]time.Duration),
		detectors: make(map[types.ProcID]*membership.Detector),
	}

	serverSet := types.NewProcSet(serverIDs...)
	for _, sid := range serverIDs {
		srv, err := membership.NewServer(sid, serverSet, w.net.Handle(sid), w.notify)
		if err != nil {
			return nil, err
		}
		w.servers[sid] = srv
		s := srv
		id := sid
		w.net.Register(sid, corfifo.HandlerFunc(func(from types.ProcID, m types.WireMsg) {
			if m.Kind == types.KindHeartbeat {
				if d := w.detectors[id]; d != nil {
					d.OnHeartbeatInfo(from, virtualTime(w.Now()), m.Reach)
				}
				return
			}
			s.HandleMessage(from, m)
		}))
	}
	for i, cid := range clients {
		sid := serverIDs[i%cfg.Servers]
		w.home[cid] = sid
		w.servers[sid].AddClient(cid)
		if cfg.WithEndpoints {
			w.epSeq++
			ep, err := core.NewEndpoint(core.Config{
				ID:        cid,
				Transport: w.net.Handle(cid),
				Level:     core.LevelGCS,
				AutoBlock: true,
				MsgIDBase: int64(w.epSeq) * 1_000_000_000,
			})
			if err != nil {
				return nil, err
			}
			w.eps[cid] = ep
			e := ep
			id := cid
			w.net.Register(cid, corfifo.HandlerFunc(func(from types.ProcID, m types.WireMsg) {
				e.HandleMessage(from, m)
				w.drain(id)
			}))
		}
	}
	return w, nil
}

// Servers returns the server identifiers.
func (w *ServerWorld) Servers() []types.ProcID {
	return append([]types.ProcID(nil), w.serverIDs...)
}

// Clients returns the client identifiers.
func (w *ServerWorld) Clients() []types.ProcID {
	return append([]types.ProcID(nil), w.clients...)
}

// Server returns the membership server with the given id.
func (w *ServerWorld) Server(id types.ProcID) *membership.Server { return w.servers[id] }

// Endpoint returns the GCS end-point attached to client id (nil without
// WithEndpoints).
func (w *ServerWorld) Endpoint(id types.ProcID) *core.Endpoint { return w.eps[id] }

// AttachClients registers a batch of new clients at the given home server
// in one virtual instant — a flash crowd. The caller triggers a
// reconfiguration (TriggerChange) to admit the batch into a view; a single
// change suffices however large the batch is. Identifiers must be fresh.
// With WithEndpoints set, each new client gets a GCS end-point wired to
// the network like the boot-time ones.
func (w *ServerWorld) AttachClients(sid types.ProcID, ids []types.ProcID) error {
	srv, ok := w.servers[sid]
	if !ok {
		return fmt.Errorf("sim: no server %s", sid)
	}
	for _, cid := range ids {
		if _, dup := w.home[cid]; dup {
			return fmt.Errorf("sim: client %s already attached", cid)
		}
	}
	w.addProcs(ids...)
	for _, cid := range ids {
		w.home[cid] = sid
		w.clients = append(w.clients, cid)
		srv.AddClient(cid)
		if w.cfg.WithEndpoints {
			w.epSeq++
			ep, err := core.NewEndpoint(core.Config{
				ID:        cid,
				Transport: w.net.Handle(cid),
				Level:     core.LevelGCS,
				AutoBlock: true,
				MsgIDBase: int64(w.epSeq) * 1_000_000_000,
			})
			if err != nil {
				return err
			}
			w.eps[cid] = ep
			e := ep
			id := cid
			w.net.Register(cid, corfifo.HandlerFunc(func(from types.ProcID, m types.WireMsg) {
				e.HandleMessage(from, m)
				w.drain(id)
			}))
		}
	}
	return nil
}

// DetachClients deregisters clients from their home servers (a leave or
// churn storm). The caller triggers a reconfiguration to exclude them;
// retained server-side records keep their identifiers monotone should they
// ever return.
func (w *ServerWorld) DetachClients(ids ...types.ProcID) error {
	for _, cid := range ids {
		sid, ok := w.home[cid]
		if !ok {
			return fmt.Errorf("sim: client %s is not attached", cid)
		}
		w.servers[sid].RemoveClient(cid)
		delete(w.home, cid)
		delete(w.eps, cid)
		for i, c := range w.clients {
			if c == cid {
				w.clients = append(w.clients[:i], w.clients[i+1:]...)
				break
			}
		}
	}
	return nil
}

// HomeOf returns the home server of a client (empty if not attached).
func (w *ServerWorld) HomeOf(cid types.ProcID) types.ProcID { return w.home[cid] }

// Boot connects all servers' failure detectors to the full server set,
// which starts the first membership attempt, and runs to quiescence.
func (w *ServerWorld) Boot() error {
	all := types.NewProcSet(w.serverIDs...)
	for _, sid := range w.serverIDs {
		w.servers[sid].SetReachable(all)
	}
	return w.Run()
}

// TriggerChange starts a fresh membership attempt at one server (the others
// adopt it) and runs to quiescence — one steady-state view change.
func (w *ServerWorld) TriggerChange() error {
	w.servers[w.serverIDs[0]].Reconfigure()
	return w.Run()
}

// Send multicasts from a client end-point (requires WithEndpoints).
func (w *ServerWorld) Send(p types.ProcID, payload []byte) (types.AppMsg, error) {
	ep := w.eps[p]
	if ep == nil {
		return types.AppMsg{}, fmt.Errorf("sim: client %s has no end-point", p)
	}
	m, err := ep.Send(payload)
	if err != nil {
		return types.AppMsg{}, err
	}
	w.specEvent(spec.ESend{P: p, MsgID: m.ID})
	w.drain(p)
	return m, nil
}

// notify relays a server's notification to its client after the notify
// latency, preserving per-client order.
func (w *ServerWorld) notify(p types.ProcID, n membership.Notification) {
	w.Notifications++
	arrival := w.now + w.cfg.NotifyLatency.Sample(p, p, w.rng)
	if arrival < w.lastNotif[p] {
		arrival = w.lastNotif[p]
	}
	w.lastNotif[p] = arrival
	w.queue.push(arrival, func() {
		switch n.Kind {
		case membership.NotifyStartChange:
			w.specEvent(spec.EMStartChange{P: p, SC: n.StartChange})
			if ep := w.eps[p]; ep != nil {
				w.net.SetLive(p, n.StartChange.Set)
				ep.HandleStartChange(n.StartChange)
				w.drain(p)
			}
		case membership.NotifyView:
			w.specEvent(spec.EMView{P: p, View: n.View})
			if ep := w.eps[p]; ep != nil {
				w.net.SetLive(p, n.View.Members)
				ep.HandleView(n.View)
				w.drain(p)
			}
		}
	})
}

func (w *ServerWorld) specEvent(ev spec.Event) {
	if w.cfg.Suite != nil {
		w.cfg.Suite.OnEvent(ev)
	}
}

func (w *ServerWorld) drain(p types.ProcID) {
	ep := w.eps[p]
	if ep == nil {
		return
	}
	for _, ev := range ep.TakeEvents() {
		switch e := ev.(type) {
		case core.DeliverEvent:
			w.specEvent(spec.EDeliver{P: p, From: e.Sender, MsgID: e.Msg.ID})
		case core.ViewEvent:
			w.specEvent(spec.EView{P: p, View: e.View, Trans: e.TransitionalSet, HasTrans: e.TransitionalSet != nil})
		case core.BlockEvent:
			w.specEvent(spec.EBlock{P: p})
			w.specEvent(spec.EBlockOK{P: p})
		}
	}
}

// virtualTime maps the simulator's clock onto a time.Time instant for the
// failure detector's interface.
func virtualTime(d time.Duration) time.Time {
	return time.Unix(0, 0).Add(d)
}

// RunWithHeartbeats drives the deployment for the given window with a
// heartbeat failure detector at every server: each interval, every server
// multicasts a heartbeat to its peers and re-evaluates suspicions with the
// given timeout, feeding verdict changes straight into its membership
// algorithm. With heartbeats running, partitions and heals reconfigure the
// membership autonomously — no external SetReachable calls.
func (w *ServerWorld) RunWithHeartbeats(window, interval, timeout time.Duration) error {
	serverSet := types.NewProcSet(w.serverIDs...)
	for _, sid := range w.serverIDs {
		if w.detectors[sid] == nil {
			w.detectors[sid] = membership.NewDetector(sid, serverSet, timeout, virtualTime(w.Now()))
		}
	}
	deadline := w.Now() + window
	var tick func()
	tick = func() {
		if w.Now() > deadline {
			return
		}
		for _, sid := range w.serverIDs {
			peers := serverSet.Minus(types.NewProcSet(sid))
			if peers.Len() > 0 {
				w.net.Send(sid, peers.Sorted(), types.WireMsg{
					Kind:  types.KindHeartbeat,
					Reach: w.detectors[sid].Bitmap(),
				})
			}
		}
		for _, sid := range w.serverIDs {
			if reachable, changed := w.detectors[sid].Tick(virtualTime(w.Now())); changed {
				w.servers[sid].SetReachable(reachable)
			}
		}
		w.At(interval, tick)
	}
	w.At(0, tick)
	return w.RunFor(window)
}

// PartitionServers splits the deployment: server connectivity, failure
// detectors, and each server's clients follow their home server into its
// side. Each side's membership then stabilizes independently (the service
// is partitionable). Runs to quiescence.
func (w *ServerWorld) PartitionServers(groups ...types.ProcSet) error {
	comps := make([]types.ProcSet, len(groups))
	for i, g := range groups {
		comp := g.Clone()
		for _, cid := range w.clients {
			if g.Contains(w.home[cid]) {
				comp.Add(cid)
			}
		}
		comps[i] = comp
	}
	w.SetConnectivity(comps...)
	for _, g := range groups {
		for sid := range g {
			if srv, ok := w.servers[sid]; ok {
				srv.SetReachable(g)
			}
		}
	}
	return w.Run()
}

// HealServers reconnects everything and re-merges the membership. Runs to
// quiescence.
func (w *ServerWorld) HealServers() error {
	w.HealConnectivity()
	all := types.NewProcSet(w.serverIDs...)
	for _, sid := range w.serverIDs {
		w.servers[sid].SetReachable(all)
	}
	return w.Run()
}
