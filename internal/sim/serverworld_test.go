package sim

import (
	"fmt"
	"testing"
	"time"

	"vsgm/internal/randseed"
	"vsgm/internal/spec"
	"vsgm/internal/types"
)

func TestServerWorldBootConvergesClients(t *testing.T) {
	suite := spec.FullSuite(spec.WithTrace())
	w, err := NewServerWorld(ServerWorldConfig{
		Servers:          2,
		ClientsPerServer: 3,
		Latency:          FixedLatency(10 * time.Millisecond),
		NotifyLatency:    FixedLatency(2 * time.Millisecond),
		Seed:             11,
		Suite:            suite,
		WithEndpoints:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}

	want := types.NewProcSet(w.Clients()...)
	var shared types.View
	for i, cid := range w.Clients() {
		got := w.Endpoint(cid).CurrentView()
		if !got.Members.Equal(want) {
			t.Fatalf("%s stabilized in %s, want members %s", cid, got, want)
		}
		if i == 0 {
			shared = got
		} else if !got.Equal(shared) {
			t.Fatalf("%s installed %s, but %s installed %s: servers delivered different views",
				cid, got, w.Clients()[0], shared)
		}
	}

	// The whole architecture carries application traffic end to end.
	for _, cid := range w.Clients() {
		if _, err := w.Send(cid, []byte("hi")); err != nil {
			t.Fatalf("send from %s: %v", cid, err)
		}
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if err := suite.Err(); err != nil {
		t.Fatalf("spec violations:\n%v", err)
	}
	if err := spec.CheckLiveness(suite.Trace(), shared); err != nil {
		t.Errorf("liveness: %v", err)
	}
}

// TestServerWorldFlashCrowdAttach joins a 1k-client flash crowd in one
// virtual instant and asserts the membership absorbs it in one
// reconfiguration: a single common view containing every joiner, Self
// Inclusion and Local Monotonicity intact (spec suite), and a bounded
// number of attempts (no livelock from the burst).
func TestServerWorldFlashCrowdAttach(t *testing.T) {
	seed, _ := randseed.Pick(29)
	t.Logf("PRNG seed %d (replay: %s=%d go test -run '%s' ./internal/sim)",
		seed, randseed.EnvVar, seed, t.Name())
	suite := spec.NewSuite([]spec.Checker{spec.NewMembership()}, spec.WithTrace())
	w, err := NewServerWorld(ServerWorldConfig{
		Servers:          3,
		ClientsPerServer: 2,
		Latency:          FixedLatency(10 * time.Millisecond),
		NotifyLatency:    FixedLatency(2 * time.Millisecond),
		Seed:             seed,
		Suite:            suite,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}

	before := make(map[types.ProcID]int64)
	for _, sid := range w.Servers() {
		before[sid] = w.Server(sid).AttemptsRun()
	}

	const crowd = 1000
	joiners := make([]types.ProcID, crowd)
	for i := range joiners {
		joiners[i] = types.ProcID(fmt.Sprintf("f%04d", i))
	}
	for i, sid := range w.Servers() {
		lo, hi := i*crowd/len(w.Servers()), (i+1)*crowd/len(w.Servers())
		if err := w.AttachClients(sid, joiners[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.TriggerChange(); err != nil {
		t.Fatal(err)
	}

	// Bounded attempts: the burst warms the caches in one extra round, so
	// the whole crowd is admitted within two attempts per server.
	for _, sid := range w.Servers() {
		if got := w.Server(sid).AttemptsRun() - before[sid]; got > 2 {
			t.Errorf("server %s ran %d attempts absorbing the flash crowd, want <= 2", sid, got)
		}
	}

	// Every client's last membership view is one shared view holding the
	// full population.
	want := types.NewProcSet(w.Clients()...)
	last := make(map[types.ProcID]types.View)
	for _, ev := range suite.Trace() {
		if e, ok := ev.(spec.EMView); ok {
			last[e.P] = e.View
		}
	}
	var shared types.View
	for i, cid := range w.Clients() {
		got, ok := last[cid]
		if !ok {
			t.Fatalf("client %s never received a membership view", cid)
		}
		if !got.Members.Equal(want) {
			t.Fatalf("%s stabilized in view %d with %d members, want %d",
				cid, got.ID, got.Members.Len(), want.Len())
		}
		if i == 0 {
			shared = got
		} else if !got.Equal(shared) {
			t.Fatalf("%s installed view %d, want the shared view %d", cid, got.ID, shared.ID)
		}
	}

	if err := suite.Err(); err != nil {
		t.Fatalf("spec violations:\n%v", err)
	}
}

func TestServerWorldSteadyStateChangeIsOneAttempt(t *testing.T) {
	w, err := NewServerWorld(ServerWorldConfig{
		Servers:          3,
		ClientsPerServer: 4,
		Latency:          FixedLatency(10 * time.Millisecond),
		Seed:             13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}

	before := make(map[types.ProcID]int64)
	for _, sid := range w.Servers() {
		before[sid] = w.Server(sid).AttemptsRun()
	}
	if err := w.TriggerChange(); err != nil {
		t.Fatal(err)
	}
	for _, sid := range w.Servers() {
		if got := w.Server(sid).AttemptsRun() - before[sid]; got != 1 {
			t.Errorf("server %s ran %d attempts for a steady-state change, want 1", sid, got)
		}
	}
}

func TestServerWorldMessageCostScalesWithServersNotClients(t *testing.T) {
	// Experiment E8 in miniature: with C clients total, the client-server
	// architecture exchanges O(S^2) server messages per change, while the
	// flat architecture (every client a membership participant) exchanges
	// O(C^2).
	run := func(servers, clientsPer int) int64 {
		w, err := NewServerWorld(ServerWorldConfig{
			Servers:          servers,
			ClientsPerServer: clientsPer,
			Latency:          FixedLatency(10 * time.Millisecond),
			Seed:             17,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Boot(); err != nil {
			t.Fatal(err)
		}
		base := w.Network().Stats().Sent.Memb
		if err := w.TriggerChange(); err != nil {
			t.Fatal(err)
		}
		return w.Network().Stats().Sent.Memb - base
	}

	const clients = 24
	clientServer := run(3, clients/3) // 3 servers, 24 clients
	flat := run(clients, 1)           // every client is a server
	if clientServer*4 > flat {        // expect ~ (3*2) vs (24*23)
		t.Errorf("client-server change cost %d not ≪ flat cost %d", clientServer, flat)
	}
}

func TestServerWorldPartitionAndHeal(t *testing.T) {
	suite := spec.FullSuite(spec.WithTrace())
	w, err := NewServerWorld(ServerWorldConfig{
		Servers:          2,
		ClientsPerServer: 2,
		Latency:          FixedLatency(8 * time.Millisecond),
		NotifyLatency:    FixedLatency(2 * time.Millisecond),
		Seed:             23,
		Suite:            suite,
		WithEndpoints:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}

	// Split: each server keeps its own clients.
	sA := types.NewProcSet(w.Servers()[0])
	sB := types.NewProcSet(w.Servers()[1])
	if err := w.PartitionServers(sA, sB); err != nil {
		t.Fatal(err)
	}
	sideOf := func(sid types.ProcID) types.ProcSet {
		side := types.NewProcSet()
		for _, cid := range w.Clients() {
			if w.home[cid] == sid {
				side.Add(cid)
			}
		}
		return side
	}
	for _, sid := range w.Servers() {
		want := sideOf(sid)
		for _, cid := range want.Sorted() {
			if got := w.Endpoint(cid).CurrentView().Members; !got.Equal(want) {
				t.Fatalf("%s partitioned view members = %s, want %s", cid, got, want)
			}
		}
	}

	// Each side keeps multicasting within its partition.
	for _, cid := range w.Clients() {
		if _, err := w.Send(cid, []byte("partitioned")); err != nil {
			t.Fatalf("send from %s: %v", cid, err)
		}
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}

	// Heal: everyone merges back into a single view.
	if err := w.HealServers(); err != nil {
		t.Fatal(err)
	}
	all := types.NewProcSet(w.Clients()...)
	var merged types.View
	for i, cid := range w.Clients() {
		got := w.Endpoint(cid).CurrentView()
		if !got.Members.Equal(all) {
			t.Fatalf("%s merged view members = %s, want %s", cid, got.Members, all)
		}
		if i == 0 {
			merged = got
		} else if !got.Equal(merged) {
			t.Fatalf("merged views differ: %s vs %s", got, merged)
		}
	}
	if err := suite.Err(); err != nil {
		t.Fatalf("spec violations:\n%v", err)
	}
}

func TestWorkloadDrivesCluster(t *testing.T) {
	c, err := NewCluster(Config{
		Procs:   ProcIDs(3),
		Latency: FixedLatency(5 * time.Millisecond),
		Seed:    31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ReconfigureTo(types.NewProcSet(c.Procs()...)); err != nil {
		t.Fatal(err)
	}
	stats, err := (Workload{
		PerSender:   10,
		Burst:       2,
		Interval:    3 * time.Millisecond,
		PayloadSize: 32,
	}).Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if stats.Err() != nil || stats.Failed != 0 {
		t.Fatalf("workload failures: %d (%v)", stats.Failed, stats.Err())
	}
	if stats.Sent != 30 {
		t.Fatalf("sent = %d, want 30", stats.Sent)
	}
	if got, want := c.Metrics().Delivered, int64(90); got != want {
		t.Fatalf("delivered = %d, want %d", got, want)
	}
}

func TestWorkloadToleratesBlockedSends(t *testing.T) {
	c, err := NewCluster(Config{
		Procs:           ProcIDs(3),
		Latency:         FixedLatency(10 * time.Millisecond),
		MembershipRound: 10 * time.Millisecond,
		Seed:            37,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := types.NewProcSet(c.Procs()...)
	if _, _, err := c.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}
	// A workload spanning a reconfiguration: some sends land in the
	// blocked window and are dropped rather than failing the run.
	stats, err := (Workload{PerSender: 20, Interval: 2 * time.Millisecond, IgnoreBlocked: true}).Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	c.At(5*time.Millisecond, func() {
		if err := c.StartChange(all); err != nil {
			t.Errorf("start change: %v", err)
		}
	})
	c.At(15*time.Millisecond, func() {
		if _, err := c.DeliverView(all); err != nil {
			t.Errorf("deliver view: %v", err)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 0 {
		t.Fatalf("failed sends: %d (%v)", stats.Failed, stats.Err())
	}
	if stats.Blocked == 0 {
		t.Log("no sends hit the blocked window (timing-dependent); still fine")
	}
	if stats.Sent+stats.Blocked != 60 {
		t.Fatalf("sent %d + blocked %d != 60", stats.Sent, stats.Blocked)
	}
}

func TestHeartbeatDetectorDrivesMembershipAutonomously(t *testing.T) {
	suite := spec.FullSuite(spec.WithTrace())
	w, err := NewServerWorld(ServerWorldConfig{
		Servers:          2,
		ClientsPerServer: 2,
		Latency:          FixedLatency(5 * time.Millisecond),
		NotifyLatency:    FixedLatency(2 * time.Millisecond),
		Seed:             41,
		Suite:            suite,
		WithEndpoints:    true,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		interval = 20 * time.Millisecond
		timeout  = 50 * time.Millisecond
	)
	// Boot purely via heartbeats: the first ticks discover full
	// reachability and form the group, with no Boot()/SetReachable calls.
	if err := w.RunWithHeartbeats(300*time.Millisecond, interval, timeout); err != nil {
		t.Fatal(err)
	}
	all := types.NewProcSet(w.Clients()...)
	for _, cid := range w.Clients() {
		if got := w.Endpoint(cid).CurrentView().Members; !got.Equal(all) {
			t.Fatalf("after heartbeat boot, %s view members = %s, want %s", cid, got, all)
		}
	}

	// Sever connectivity only; the detectors must notice on their own and
	// each side must reconfigure down to its local clients.
	w.SetConnectivity(
		types.NewProcSet(w.Servers()[0], "c000", "c002"),
		types.NewProcSet(w.Servers()[1], "c001", "c003"),
	)
	if err := w.RunWithHeartbeats(500*time.Millisecond, interval, timeout); err != nil {
		t.Fatal(err)
	}
	sideA := types.NewProcSet("c000", "c002")
	sideB := types.NewProcSet("c001", "c003")
	for _, cid := range sideA.Sorted() {
		if got := w.Endpoint(cid).CurrentView().Members; !got.Equal(sideA) {
			t.Fatalf("partitioned %s view members = %s, want %s", cid, got, sideA)
		}
	}
	for _, cid := range sideB.Sorted() {
		if got := w.Endpoint(cid).CurrentView().Members; !got.Equal(sideB) {
			t.Fatalf("partitioned %s view members = %s, want %s", cid, got, sideB)
		}
	}

	// Heal connectivity only; heartbeats resume and the group re-merges.
	w.HealConnectivity()
	if err := w.RunWithHeartbeats(500*time.Millisecond, interval, timeout); err != nil {
		t.Fatal(err)
	}
	for _, cid := range w.Clients() {
		if got := w.Endpoint(cid).CurrentView().Members; !got.Equal(all) {
			t.Fatalf("after heal, %s view members = %s, want %s", cid, got, all)
		}
	}
	if err := suite.Err(); err != nil {
		t.Fatalf("spec violations:\n%v", err)
	}
}
