package sim

import (
	"testing"
	"time"

	"vsgm/internal/types"
)

func TestEngineEventOrdering(t *testing.T) {
	e := newEngine(ProcIDs(1), FixedLatency(0), 1)
	var order []int
	e.At(20*time.Millisecond, func() { order = append(order, 3) })
	e.At(10*time.Millisecond, func() { order = append(order, 1) })
	e.At(10*time.Millisecond, func() { order = append(order, 2) }) // same time: FIFO
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestEngineRunForAdvancesClockExactly(t *testing.T) {
	e := newEngine(ProcIDs(1), FixedLatency(0), 1)
	fired := false
	e.At(50*time.Millisecond, func() { fired = true })
	if err := e.RunFor(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("future event fired early")
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("clock = %v, want 20ms", e.Now())
	}
	if err := e.RunFor(40 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event did not fire within its window")
	}
	if e.Now() != 60*time.Millisecond {
		t.Fatalf("clock = %v, want 60ms", e.Now())
	}
}

func TestEngineFIFOTimingUnderJitter(t *testing.T) {
	// Even with wild jitter, per-link deliveries must happen in send order:
	// the arrival floor ensures message i+1 never arrives before message i.
	procs := ProcIDs(2)
	e := newEngine(procs, UniformLatency{Base: 10 * time.Millisecond, Jitter: 9 * time.Millisecond}, 42)
	var got []int64
	e.net.Register(procs[1], handlerFunc(func(_ types.ProcID, m types.WireMsg) {
		got = append(got, m.App.ID)
	}))
	for i := int64(1); i <= 20; i++ {
		e.net.Send(procs[0], []types.ProcID{procs[1]}, types.WireMsg{
			Kind: types.KindApp, App: types.AppMsg{ID: i},
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, id := range got {
		if id != int64(i+1) {
			t.Fatalf("delivery %d has id %d: reordered", i, id)
		}
	}
}

// handlerFunc mirrors corfifo.HandlerFunc for engine tests.
type handlerFunc func(from types.ProcID, m types.WireMsg)

func (f handlerFunc) HandleMessage(from types.ProcID, m types.WireMsg) { f(from, m) }

func TestEngineBlockedLinkQueuesAndFlushes(t *testing.T) {
	procs := ProcIDs(2)
	e := newEngine(procs, FixedLatency(time.Millisecond), 1)
	var got int
	e.net.Register(procs[1], handlerFunc(func(types.ProcID, types.WireMsg) { got++ }))

	e.BlockLink(procs[0], procs[1])
	e.net.Send(procs[0], []types.ProcID{procs[1]}, types.WireMsg{Kind: types.KindApp})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("message crossed a blocked link")
	}

	e.UnblockLink(procs[0], procs[1])
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("flushed deliveries = %d, want 1", got)
	}
}

func TestEngineConnectivityComponents(t *testing.T) {
	procs := ProcIDs(4)
	e := newEngine(procs, FixedLatency(time.Millisecond), 1)
	e.SetConnectivity(
		types.NewProcSet(procs[0], procs[1]),
		types.NewProcSet(procs[2]),
	)
	// procs[3] was not mentioned: it becomes a singleton.
	if e.connected(procs[0], procs[1]) != true {
		t.Error("same group disconnected")
	}
	if e.connected(procs[0], procs[2]) || e.connected(procs[2], procs[3]) || e.connected(procs[0], procs[3]) {
		t.Error("cross-group links connected")
	}
	e.HealConnectivity()
	if !e.connected(procs[0], procs[3]) {
		t.Error("heal did not reconnect")
	}
}

func TestUniformLatencyBounds(t *testing.T) {
	e := newEngine(ProcIDs(1), FixedLatency(0), 7)
	model := UniformLatency{Base: 10 * time.Millisecond, Jitter: 4 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		d := model.Sample("a", "b", e.rng)
		if d < 6*time.Millisecond || d > 14*time.Millisecond {
			t.Fatalf("sample %v outside [6ms, 14ms]", d)
		}
	}
	if got := (UniformLatency{Base: time.Millisecond}).Sample("a", "b", e.rng); got != time.Millisecond {
		t.Errorf("jitterless sample = %v", got)
	}
	if got := FixedLatency(5).Sample("a", "b", e.rng); got != 5 {
		t.Errorf("fixed sample = %v", got)
	}
}

func TestClusterRequiresProcs(t *testing.T) {
	if _, err := NewCluster(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestProcIDsAreSortedAndUnique(t *testing.T) {
	ids := ProcIDs(12)
	seen := make(map[types.ProcID]bool)
	for i, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
		if i > 0 && !(ids[i-1] < id) {
			t.Fatalf("ids not sorted: %s before %s", ids[i-1], id)
		}
	}
}
