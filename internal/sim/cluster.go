package sim

import (
	"fmt"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/corfifo"
	"vsgm/internal/membership"
	"vsgm/internal/spec"
	"vsgm/internal/types"
)

// pair is an ordered link.
type pair struct{ from, to types.ProcID }

// Node is the automaton interface the cluster drives. *core.Endpoint is the
// primary implementation; internal/baseline provides comparison algorithms.
type Node interface {
	ID() types.ProcID
	HandleStartChange(sc types.StartChange)
	HandleView(v types.View)
	HandleMessage(from types.ProcID, m types.WireMsg)
	Send(payload []byte) (types.AppMsg, error)
	BlockOK()
	Crash()
	Recover()
	TakeEvents() []core.Event
	CurrentView() types.View
}

var _ Node = (*core.Endpoint)(nil)

// NodeFactory builds one node; idx is the process's position in Config.Procs
// (useful for deriving unique message-id bases).
type NodeFactory func(p types.ProcID, idx int, tr *corfifo.Handle) (Node, error)

// Config parameterizes a simulated cluster.
type Config struct {
	// Procs lists the end-points; required. See ProcIDs for a generator.
	Procs []types.ProcID

	// Level selects the automaton layer for every end-point; defaults to
	// core.LevelGCS.
	Level core.Level

	// Forwarding selects the forwarding strategy; defaults to the simple
	// strategy of Section 5.2.2.
	Forwarding core.ForwardingStrategy

	// SmallSync enables the Section 5.2.4 small-sync-message optimization.
	SmallSync bool

	// ManualBlock disables automatic block acknowledgment; the test drives
	// BlockOK itself. By default end-points act as their own blocking
	// clients.
	ManualBlock bool

	// RetainOldBuffers disables message-buffer garbage collection.
	RetainOldBuffers bool

	// AckInterval enables within-view stability acknowledgments every this
	// many deliveries (0 disables); see core.Config.AckInterval.
	AckInterval int

	// HierarchyGroupSize enables the two-tier synchronization hierarchy;
	// see core.Config.HierarchyGroupSize.
	HierarchyGroupSize int

	// Latency models per-message link latency; defaults to DefaultLatency.
	Latency LatencyModel

	// MembershipLatency models the latency of membership notifications to
	// clients; defaults to Latency.
	MembershipLatency LatencyModel

	// MembershipRound is the simulated duration of the membership servers'
	// agreement round: ReconfigureTo commits the view this long after
	// issuing the start_change. Default 0 (instant agreement).
	MembershipRound time.Duration

	// Seed seeds the deterministic RNG.
	Seed int64

	// NewNode overrides node construction (used to run baseline algorithms
	// in the same harness). When nil, core end-points are built from the
	// fields above.
	NewNode NodeFactory

	// Suite receives every external event of the execution; optional.
	Suite *spec.Suite

	// OnAppEvent observes application-facing events per end-point; optional.
	OnAppEvent func(p types.ProcID, ev core.Event)

	// TraceFor, when set, supplies each end-point's reconfiguration trace
	// hook (e.g. obs.Tracer.ForEndpoint). Only used by the default node
	// factory; a custom NewNode wires tracing itself. May return nil for
	// untraced end-points.
	TraceFor func(p types.ProcID) core.ProtocolTrace
}

// Metrics aggregates execution measurements.
type Metrics struct {
	Sent         int64
	Delivered    int64
	ViewInstalls int64

	installTimes map[string]map[types.ProcID]time.Duration
	blockStart   map[types.ProcID]time.Duration
	BlockedTotal map[types.ProcID]time.Duration
}

// InstallTimes returns the per-process virtual times at which the view with
// the given key was delivered to the application.
func (m *Metrics) InstallTimes(viewKey string) map[types.ProcID]time.Duration {
	out := make(map[types.ProcID]time.Duration, len(m.installTimes[viewKey]))
	for p, t := range m.installTimes[viewKey] {
		out[p] = t
	}
	return out
}

// Cluster is a simulated composition of end-points, substrate, and
// membership service under a virtual clock (the composition of Figure 8).
// It is not safe for concurrent use.
type Cluster struct {
	*engine

	cfg      Config
	oracle   *membership.Oracle
	eps      map[types.ProcID]Node
	lastMemb map[types.ProcID]time.Duration
	metrics  Metrics
}

// ProcIDs returns n process identifiers p00, p01, ...
func ProcIDs(n int) []types.ProcID {
	out := make([]types.ProcID, n)
	for i := range out {
		out[i] = types.ProcID(fmt.Sprintf("p%02d", i))
	}
	return out
}

// NewCluster builds a cluster per cfg. All end-points start registered,
// fully connected, and in their initial singleton views.
func NewCluster(cfg Config) (*Cluster, error) {
	if len(cfg.Procs) == 0 {
		return nil, fmt.Errorf("sim: config requires at least one process")
	}
	if cfg.Level == 0 {
		cfg.Level = core.LevelGCS
	}
	if cfg.Forwarding == nil {
		cfg.Forwarding = core.NewSimpleForwarding()
	}
	if cfg.Latency == nil {
		cfg.Latency = DefaultLatency()
	}
	if cfg.MembershipLatency == nil {
		cfg.MembershipLatency = cfg.Latency
	}

	c := &Cluster{
		engine:   newEngine(cfg.Procs, cfg.Latency, cfg.Seed),
		cfg:      cfg,
		eps:      make(map[types.ProcID]Node, len(cfg.Procs)),
		lastMemb: make(map[types.ProcID]time.Duration),
	}
	c.metrics.installTimes = make(map[string]map[types.ProcID]time.Duration)
	c.metrics.blockStart = make(map[types.ProcID]time.Duration)
	c.metrics.BlockedTotal = make(map[types.ProcID]time.Duration)

	c.oracle = membership.NewOracle(c.onMembership)

	newNode := cfg.NewNode
	if newNode == nil {
		newNode = func(p types.ProcID, idx int, tr *corfifo.Handle) (Node, error) {
			epCfg := core.Config{
				ID:                 p,
				Transport:          tr,
				Level:              cfg.Level,
				Forwarding:         cfg.Forwarding,
				AutoBlock:          !cfg.ManualBlock,
				SmallSync:          cfg.SmallSync,
				RetainOldBuffers:   cfg.RetainOldBuffers,
				AckInterval:        cfg.AckInterval,
				HierarchyGroupSize: cfg.HierarchyGroupSize,
				MsgIDBase:          int64(idx+1) * 1_000_000_000,
			}
			if cfg.TraceFor != nil {
				epCfg.Trace = cfg.TraceFor(p)
			}
			return core.NewEndpoint(epCfg)
		}
	}
	for i, p := range cfg.Procs {
		ep, err := newNode(p, i, c.net.Handle(p))
		if err != nil {
			return nil, err
		}
		c.eps[p] = ep
		c.registerHandler(p)
		c.oracle.Register(p)
	}
	return c, nil
}

func (c *Cluster) registerHandler(p types.ProcID) {
	ep := c.eps[p]
	c.net.Register(p, corfifo.HandlerFunc(func(from types.ProcID, m types.WireMsg) {
		ep.HandleMessage(from, m)
		c.drain(p)
	}))
}

// Endpoint returns the node for p.
func (c *Cluster) Endpoint(p types.ProcID) Node { return c.eps[p] }

// CoreEndpoint returns the node for p as a *core.Endpoint; it returns nil
// when the cluster runs a different node implementation.
func (c *Cluster) CoreEndpoint(p types.ProcID) *core.Endpoint {
	ep, _ := c.eps[p].(*core.Endpoint)
	return ep
}

// Metrics returns the accumulated metrics.
func (c *Cluster) Metrics() *Metrics { return &c.metrics }

// Procs returns the configured process identifiers.
func (c *Cluster) Procs() []types.ProcID {
	return append([]types.ProcID(nil), c.cfg.Procs...)
}

// ---- membership plumbing ----

// onMembership receives oracle notifications and relays them to the client
// after the membership latency, preserving per-client FIFO order. The
// MBRSHP outputs are linked to CO_RFIFO.live_p as in Figure 8.
func (c *Cluster) onMembership(p types.ProcID, n membership.Notification) {
	arrival := c.now + c.cfg.MembershipLatency.Sample(p, p, c.rng)
	if arrival < c.lastMemb[p] {
		arrival = c.lastMemb[p]
	}
	c.lastMemb[p] = arrival
	c.queue.push(arrival, func() {
		ep := c.eps[p]
		switch n.Kind {
		case membership.NotifyStartChange:
			c.specEvent(spec.EMStartChange{P: p, SC: n.StartChange})
			c.net.SetLive(p, n.StartChange.Set)
			ep.HandleStartChange(n.StartChange)
		case membership.NotifyView:
			c.specEvent(spec.EMView{P: p, View: n.View})
			c.net.SetLive(p, n.View.Members)
			ep.HandleView(n.View)
		}
		c.drain(p)
	})
}

// StartChange has the membership service begin forming a view with the given
// set (start_change notifications flow to each live member).
func (c *Cluster) StartChange(set types.ProcSet) error {
	_, err := c.oracle.StartChange(set)
	return err
}

// DeliverView has the membership service commit and deliver a view with the
// given membership.
func (c *Cluster) DeliverView(set types.ProcSet) (types.View, error) {
	return c.oracle.DeliverView(set)
}

// ReconfigureTo performs a full reconfiguration to the given membership:
// start_change now, view commit after the configured membership round, then
// the execution runs to quiescence. It returns the installed view and the
// duration from the start_change until the last member delivered the view
// to its application.
func (c *Cluster) ReconfigureTo(set types.ProcSet) (types.View, time.Duration, error) {
	start := c.now
	if err := c.StartChange(set); err != nil {
		return types.View{}, 0, err
	}
	var (
		v    types.View
		verr error
	)
	c.At(c.cfg.MembershipRound, func() { v, verr = c.oracle.DeliverView(set) })
	if err := c.Run(); err != nil {
		return types.View{}, 0, err
	}
	if verr != nil {
		return types.View{}, 0, verr
	}
	installs := c.metrics.installTimes[v.Key()]
	var last time.Duration
	for _, p := range set.Sorted() {
		t, ok := installs[p]
		if !ok {
			return v, 0, fmt.Errorf("sim: %s did not install %s", p, v)
		}
		if t > last {
			last = t
		}
	}
	return v, last - start, nil
}

// Partition splits both the network connectivity and the membership into the
// given groups, then runs to quiescence. Each group receives its own view.
func (c *Cluster) Partition(groups ...types.ProcSet) ([]types.View, error) {
	c.SetConnectivity(groups...)
	views, err := c.oracle.Partition(groups...)
	if err != nil {
		return nil, err
	}
	if err := c.Run(); err != nil {
		return nil, err
	}
	return views, nil
}

// ---- application interface ----

// Send multicasts payload from p in p's current view.
func (c *Cluster) Send(p types.ProcID, payload []byte) (types.AppMsg, error) {
	m, err := c.eps[p].Send(payload)
	if err != nil {
		return types.AppMsg{}, err
	}
	c.metrics.Sent++
	c.specEvent(spec.ESend{P: p, MsgID: m.ID})
	c.drain(p)
	return m, nil
}

// BlockOK acknowledges an outstanding block request at p (only needed with
// ManualBlock).
func (c *Cluster) BlockOK(p types.ProcID) {
	c.specEvent(spec.EBlockOK{P: p})
	c.eps[p].BlockOK()
	c.drain(p)
}

// Crash crashes end-point p (Section 8): its automaton freezes, the
// substrate stops delivering to it, and the membership marks it crashed.
func (c *Cluster) Crash(p types.ProcID) error {
	c.specEvent(spec.ECrash{P: p})
	c.eps[p].Crash()
	c.net.Unregister(p)
	return c.oracle.Crash(p)
}

// Recover restarts end-point p from its initial state under its original
// identity (no stable storage; Section 8).
func (c *Cluster) Recover(p types.ProcID) error {
	c.specEvent(spec.ERecover{P: p})
	if err := c.oracle.Recover(p); err != nil {
		return err
	}
	c.registerHandler(p)
	c.eps[p].Recover()
	c.drain(p)
	return nil
}

// ---- event draining ----

func (c *Cluster) specEvent(ev spec.Event) {
	if c.cfg.Suite != nil {
		c.cfg.Suite.OnEvent(ev)
	}
}

// drain collects the application events an end-point produced, feeding the
// spec suite, metrics, and the observer callback.
func (c *Cluster) drain(p types.ProcID) {
	for _, ev := range c.eps[p].TakeEvents() {
		switch e := ev.(type) {
		case core.DeliverEvent:
			c.metrics.Delivered++
			c.specEvent(spec.EDeliver{P: p, From: e.Sender, MsgID: e.Msg.ID})
		case core.ViewEvent:
			c.metrics.ViewInstalls++
			row := c.metrics.installTimes[e.View.Key()]
			if row == nil {
				row = make(map[types.ProcID]time.Duration)
				c.metrics.installTimes[e.View.Key()] = row
			}
			row[p] = c.now
			if start, ok := c.metrics.blockStart[p]; ok {
				c.metrics.BlockedTotal[p] += c.now - start
				delete(c.metrics.blockStart, p)
			}
			c.specEvent(spec.EView{
				P:        p,
				View:     e.View,
				Trans:    e.TransitionalSet,
				HasTrans: e.TransitionalSet != nil,
			})
		case core.BlockEvent:
			c.specEvent(spec.EBlock{P: p})
			c.metrics.blockStart[p] = c.now
			if !c.cfg.ManualBlock {
				// The auto-blocking client acknowledged synchronously.
				c.specEvent(spec.EBlockOK{P: p})
			}
		}
		if c.cfg.OnAppEvent != nil {
			c.cfg.OnAppEvent(p, ev)
		}
	}
}
