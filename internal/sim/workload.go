package sim

import (
	"fmt"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/types"
)

// Workload schedules application multicasts onto a cluster over virtual
// time. The zero value of optional fields picks sensible defaults.
type Workload struct {
	// Senders lists the multicasting members; defaults to every process.
	Senders []types.ProcID
	// PerSender is the number of multicasts each sender issues; required.
	PerSender int
	// Interval spaces successive rounds (one message per sender per round);
	// 0 issues everything immediately.
	Interval time.Duration
	// Burst issues this many messages back-to-back per sender per round;
	// defaults to 1.
	Burst int
	// PayloadSize is the message body size in bytes; defaults to 16.
	PayloadSize int
	// IgnoreBlocked drops sends rejected because the client is blocked for
	// a view change (useful for workloads running across reconfigurations);
	// otherwise a blocked send aborts the workload.
	IgnoreBlocked bool
}

// Apply schedules the workload's sends on the cluster's virtual clock and
// returns after scheduling (call Run or RunFor to execute). The returned
// counter is incremented as sends execute.
func (w Workload) Apply(c *Cluster) (*WorkloadStats, error) {
	if w.PerSender <= 0 {
		return nil, fmt.Errorf("sim: workload requires PerSender > 0")
	}
	senders := w.Senders
	if len(senders) == 0 {
		senders = c.Procs()
	}
	burst := w.Burst
	if burst <= 0 {
		burst = 1
	}
	size := w.PayloadSize
	if size <= 0 {
		size = 16
	}

	stats := &WorkloadStats{}
	rounds := (w.PerSender + burst - 1) / burst
	for round := 0; round < rounds; round++ {
		round := round
		at := time.Duration(round) * w.Interval
		for _, p := range senders {
			p := p
			c.At(at, func() {
				for b := 0; b < burst; b++ {
					seq := round*burst + b
					if seq >= w.PerSender {
						return
					}
					payload := make([]byte, size)
					copy(payload, fmt.Sprintf("%s-%d", p, seq))
					if _, err := c.Send(p, payload); err != nil {
						if w.IgnoreBlocked && err == core.ErrBlocked {
							stats.Blocked++
							continue
						}
						stats.Failed++
						stats.lastErr = err
						continue
					}
					stats.Sent++
				}
			})
		}
	}
	return stats, nil
}

// WorkloadStats counts the workload's outcomes.
type WorkloadStats struct {
	Sent    int
	Blocked int
	Failed  int
	lastErr error
}

// Err returns the last non-blocked send failure, if any.
func (s *WorkloadStats) Err() error { return s.lastErr }
