package sim

import (
	"math/rand"
	"time"

	"vsgm/internal/types"
)

// LatencyModel samples one-way message latencies per ordered link.
type LatencyModel interface {
	// Sample draws the latency for one message from 'from' to 'to'.
	Sample(from, to types.ProcID, r *rand.Rand) time.Duration
}

// UniformLatency draws latencies uniformly from [Base-Jitter, Base+Jitter].
type UniformLatency struct {
	Base   time.Duration
	Jitter time.Duration
}

// Sample implements LatencyModel.
func (u UniformLatency) Sample(_, _ types.ProcID, r *rand.Rand) time.Duration {
	if u.Jitter <= 0 {
		return u.Base
	}
	d := u.Base - u.Jitter + time.Duration(r.Int63n(int64(2*u.Jitter)+1))
	if d < 0 {
		return 0
	}
	return d
}

// FixedLatency returns the same latency for every message; useful for
// reasoning about rounds precisely in unit tests.
type FixedLatency time.Duration

// Sample implements LatencyModel.
func (f FixedLatency) Sample(_, _ types.ProcID, _ *rand.Rand) time.Duration {
	return time.Duration(f)
}

// DefaultLatency is the standard LAN-ish model used by the experiments:
// 10ms ± 5ms per hop.
func DefaultLatency() LatencyModel {
	return UniformLatency{Base: 10 * time.Millisecond, Jitter: 5 * time.Millisecond}
}
