// Package sim provides a deterministic discrete-event simulation harness
// that composes GCS end-points (internal/core) with the CO_RFIFO substrate
// (internal/corfifo) and a membership service (internal/membership), exactly
// as in the composition of Section 5 (Figure 8). A seeded virtual clock,
// configurable link-latency models, partitions, churn, and crash/recovery
// make whole-system executions reproducible, and every external event is fed
// to the specification checkers of internal/spec.
package sim

import (
	"container/heap"
	"time"
)

// event is one scheduled simulator step.
type event struct {
	at  time.Duration
	seq int64
	fn  func()
}

// eventQueue is a min-heap ordered by (time, insertion sequence); the
// sequence number makes simultaneous events fire in scheduling order, which
// keeps executions deterministic.
type eventQueue struct {
	items []event
	seq   int64
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) Less(i, j int) bool {
	if q.items[i].at != q.items[j].at {
		return q.items[i].at < q.items[j].at
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *eventQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *eventQueue) Push(x any) { q.items = append(q.items, x.(event)) }

func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

func (q *eventQueue) push(at time.Duration, fn func()) {
	q.seq++
	heap.Push(q, event{at: at, seq: q.seq, fn: fn})
}

func (q *eventQueue) pop() (event, bool) {
	if q.Len() == 0 {
		return event{}, false
	}
	return heap.Pop(q).(event), true
}

func (q *eventQueue) peek() (event, bool) {
	if q.Len() == 0 {
		return event{}, false
	}
	return q.items[0], true
}
